use crate::{parallel, Graph, GraphBuilder, NodeId};
use wcds_geom::{DenseGrid, GridIndex, Point};

/// A unit-disk graph: node positions plus the induced adjacency.
///
/// Two nodes are adjacent iff their Euclidean distance is at most the
/// transmission `radius` (the paper normalises `radius = 1`). Positions
/// are retained because *analysis* (geometric dilation, Lemma 2 packing
/// checks) needs them — but the distributed protocols never see them: the
/// paper's spanners are "position-less", and [`crate::Graph`] handed to a
/// protocol carries adjacency only.
///
/// # Examples
///
/// ```
/// use wcds_geom::Point;
/// use wcds_graph::UnitDiskGraph;
///
/// let udg = UnitDiskGraph::build(
///     vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0), Point::new(2.0, 0.0)],
///     1.0,
/// );
/// assert!(udg.graph().has_edge(0, 1));
/// assert!(!udg.graph().has_edge(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct UnitDiskGraph {
    points: Vec<Point>,
    radius: f64,
    graph: Graph,
}

impl UnitDiskGraph {
    /// Builds the UDG over `points` with transmission range `radius`.
    ///
    /// Runs in `O(n + |E|)` expected time using a spatial index, with
    /// [`parallel::threads`] worker threads (1 unless the `rayon`
    /// feature is enabled and `WCDS_THREADS` asks for more).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn build(points: Vec<Point>, radius: f64) -> Self {
        Self::build_with_threads(points, radius, parallel::threads())
    }

    /// [`UnitDiskGraph::build`] with an explicit worker count.
    ///
    /// The adjacency is **byte-identical for every `nthreads`**: workers
    /// produce disjoint per-node neighbor rows (each sorted locally),
    /// and the rows are concatenated in node order — no cross-thread
    /// ordering can leak into the output. Small or sparse deployments
    /// fall back to the serial scans regardless of `nthreads` (there the
    /// thread spawn would cost more than the scan).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn build_with_threads(points: Vec<Point>, radius: f64, nthreads: usize) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "radius must be positive and finite");
        let (w, h) = bounding_extent(&points);
        let n = points.len();
        let graph = if grid_is_overkill(n, radius, w, h) {
            direct_scan(&points, radius)
        } else if dense_grid_wasteful(n, radius, w, h) {
            grid_scan(&points, radius)
        } else {
            dense_scan(&points, radius, nthreads.max(1))
        };
        Self { radius, graph, points }
    }

    /// Builds a **toroidal** UDG: distances wrap around a
    /// `width × height` torus, eliminating boundary effects.
    ///
    /// Useful for measuring packing constants (Lemmas 1–2) without the
    /// thinner-at-the-border bias of a square region. Note that the
    /// retained `points` remain plain plane coordinates, so *geometric*
    /// analyses (edge lengths, dilation) are *not* torus-aware — use
    /// this constructor for structural experiments only.
    ///
    /// Runs in `O(n + |E|)` expected: coordinates are wrapped into the
    /// fundamental domain `[0, width) × [0, height)` (torus adjacency is
    /// translation-invariant), then the same spatial hash as
    /// [`UnitDiskGraph::build`] answers each node's query from the 3×3
    /// block of wrapped translates.
    ///
    /// # Panics
    ///
    /// Panics if `radius`, `width`, or `height` is not positive and
    /// finite, or if `radius` exceeds half of either dimension (the
    /// wrap metric would degenerate).
    pub fn build_torus(points: Vec<Point>, radius: f64, width: f64, height: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "radius must be positive and finite");
        assert!(width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0);
        assert!(
            radius <= width / 2.0 && radius <= height / 2.0,
            "radius must be at most half each torus dimension"
        );
        let canon: Vec<Point> = points
            .iter()
            .map(|p| Point::new(p.x.rem_euclid(width), p.y.rem_euclid(height)))
            .collect();
        let graph = if grid_is_overkill(canon.len(), radius, width, height) {
            torus_direct_scan(&canon, radius, width, height)
        } else {
            torus_grid_scan(&canon, radius, width, height)
        };
        Self { radius, graph, points }
    }

    /// The adjacency structure (what a distributed protocol may see).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The node positions (analysis only).
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Position of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn point(&self, u: NodeId) -> Point {
        self.points[u]
    }

    /// The transmission radius the graph was built with.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Euclidean length of edge `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not an edge of the graph.
    pub fn edge_length(&self, u: NodeId, v: NodeId) -> f64 {
        assert!(self.graph.has_edge(u, v), "({u}, {v}) is not an edge");
        self.points[u].distance(self.points[v])
    }

    /// Total Euclidean length of all edges.
    pub fn total_edge_length(&self) -> f64 {
        self.graph
            .edges()
            .iter()
            .map(|e| {
                let (u, v) = e.endpoints();
                self.points[u].distance(self.points[v])
            })
            .sum()
    }

    /// Decomposes the UDG into `(points, radius, graph)`.
    ///
    /// Handoff for [`crate::DynamicUdg`], which owns the same state plus
    /// a live spatial index.
    pub fn into_parts(self) -> (Vec<Point>, f64, Graph) {
        (self.points, self.radius, self.graph)
    }

    /// Rebuilds the UDG after nodes have moved (same radius).
    ///
    /// # Panics
    ///
    /// Panics if the new point count differs from the old one (node ids
    /// must stay stable across a motion step; use [`UnitDiskGraph::build`]
    /// for joins/leaves).
    pub fn rebuilt_with(&self, points: Vec<Point>) -> Self {
        assert_eq!(points.len(), self.points.len(), "motion step must preserve node count");
        Self::build(points, self.radius)
    }
}

/// Tuning point of [`grid_is_overkill`]: the effective number of
/// pairwise distance checks at which the direct scan stops paying off,
/// calibrated on `BENCH_construction`'s measured grid/naive crossover
/// (n ≈ 1–2k at the benchmark densities).
const DIRECT_SCAN_BREAK_EVEN: f64 = 600.0;

/// Occupancy heuristic: should a UDG build skip the spatial hash?
///
/// The grid pays one hash insertion plus a 3×3-block probe per node; the
/// direct scan pays `n²/2` distance checks. When the region spans many
/// cells (sparse occupancy, `n / cells` small) the grid's per-node hash
/// overhead dominates until `n` is well into the thousands, and when it
/// spans almost none (`cells ≤ 18`) the grid probes nearly all pairs
/// anyway — in both regimes the branch-free direct scan wins. Comparing
/// the direct cost against the grid's expected candidate work
/// (`≈ 9n²/cells` pair checks) captures both ends with one inequality.
fn grid_is_overkill(n: usize, radius: f64, width: f64, height: f64) -> bool {
    (n as f64) * (0.5 - 9.0 / grid_cells(radius, width, height)).max(0.0) < DIRECT_SCAN_BREAK_EVEN
}

/// Number of radius-sized grid cells covering a `width × height` extent.
fn grid_cells(radius: f64, width: f64, height: f64) -> f64 {
    (width / radius).ceil().max(1.0) * (height / radius).ceil().max(1.0)
}

/// Should a static build avoid [`DenseGrid`]'s dense cell array?
///
/// The dense index allocates every bounding-box cell; a sparse scatter
/// over a huge extent (cells ≫ points) would spend more on empty cells
/// than the hash index spends on buckets. Past a few cells per point the
/// hash wins on memory and loses nothing measurable on speed.
fn dense_grid_wasteful(n: usize, radius: f64, width: f64, height: f64) -> bool {
    grid_cells(radius, width, height) > 4.0 * n as f64 + 64.0
}

/// Extent `(width, height)` of the bounding box of `points`.
fn bounding_extent(points: &[Point]) -> (f64, f64) {
    let mut min = (f64::INFINITY, f64::INFINITY);
    let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        min = (min.0.min(p.x), min.1.min(p.y));
        max = (max.0.max(p.x), max.1.max(p.y));
    }
    ((max.0 - min.0).max(0.0), (max.1 - min.1).max(0.0))
}

/// The spatial-hash UDG builder (`O(n + |E|)` expected) — the fallback
/// for sparse scatters where [`DenseGrid`]'s cell array would be mostly
/// empty cells.
fn grid_scan(points: &[Point], radius: f64) -> Graph {
    let index = GridIndex::build(points, radius);
    let mut b = GraphBuilder::new(points.len());
    for u in 0..points.len() {
        index.for_each_within(points, points[u], radius, |v| {
            if u < v {
                b.add_edge(u, v);
            }
        });
    }
    b.build()
}

/// The batched UDG builder: one [`DenseGrid`] counting-sort index, then
/// per-node neighbor rows — each node's row is an independent radius
/// query, so rows are produced on [`parallel::map_indices`] workers and
/// assembled in node order. Every row is sorted locally, which makes the
/// CSR byte-identical to [`GraphBuilder`]'s output (and hence identical
/// for every thread count).
fn dense_scan(points: &[Point], radius: f64, nthreads: usize) -> Graph {
    let index = DenseGrid::build(points, radius);
    let rows = parallel::map_indices(
        nthreads,
        points.len(),
        || (),
        |_, u| {
            let mut row: Vec<u32> = Vec::new();
            index.for_each_within(points, points[u], radius, |v| {
                if v != u {
                    row.push(v as u32);
                }
            });
            row.sort_unstable();
            row
        },
    );
    Graph::from_sorted_rows(rows)
}

/// The pairwise UDG builder (`O(n²)`, but branch-predictable and
/// allocation-free per pair — faster below the occupancy crossover).
fn direct_scan(points: &[Point], radius: f64) -> Graph {
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(points.len());
    for u in 0..points.len() {
        for v in (u + 1)..points.len() {
            if points[u].distance_squared(points[v]) <= r2 {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// The indexed torus builder over canonicalised coordinates: batched
/// [`DenseGrid`] normally, spatial hash for sparse scatters.
fn torus_grid_scan(canon: &[Point], radius: f64, width: f64, height: f64) -> Graph {
    if dense_grid_wasteful(canon.len(), radius, width, height) {
        let index = GridIndex::build(canon, radius);
        torus_scan_impl(canon, radius, width, height, |q, f| {
            index.for_each_within(canon, q, radius, f)
        })
    } else {
        let index = DenseGrid::build(canon, radius);
        torus_scan_impl(canon, radius, width, height, |q, f| {
            index.for_each_within(canon, q, radius, f)
        })
    }
}

/// The translate-query torus scan, generic over the spatial index.
fn torus_scan_impl(
    canon: &[Point],
    radius: f64,
    width: f64,
    height: f64,
    query: impl Fn(Point, &mut dyn FnMut(usize)),
) -> Graph {
    let mut b = GraphBuilder::new(canon.len());
    for (u, p) in canon.iter().enumerate() {
        // radius ≤ min(width, height) / 2 ⇒ the nearest wrapped copy
        // of any neighbor lies in one of nine translates of u — but a
        // translate can only score a hit when u sits within `radius`
        // of the corresponding border (a query at x − width reaches
        // canonical coordinates ≤ x − width + radius, which is < 0
        // unless x ≥ width − radius, and symmetrically for the other
        // three). Interior nodes therefore issue a single query; the
        // builder dedups hits that qualify under several translates.
        let (x, y) = (p.x, p.y);
        let mut dxs = [0.0; 2];
        let mut nx = 1;
        if x < radius {
            dxs[1] = width;
            nx = 2;
        } else if x >= width - radius {
            dxs[1] = -width;
            nx = 2;
        }
        let mut dys = [0.0; 2];
        let mut ny = 1;
        if y < radius {
            dys[1] = height;
            ny = 2;
        } else if y >= height - radius {
            dys[1] = -height;
            ny = 2;
        }
        for &dx in &dxs[..nx] {
            for &dy in &dys[..ny] {
                let q = Point::new(x + dx, y + dy);
                query(q, &mut |v| {
                    if u < v {
                        b.add_edge(u, v);
                    }
                });
            }
        }
    }
    b.build()
}

/// The pairwise torus builder: min-wrap metric over all pairs.
fn torus_direct_scan(canon: &[Point], radius: f64, width: f64, height: f64) -> Graph {
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(canon.len());
    for u in 0..canon.len() {
        for v in (u + 1)..canon.len() {
            let dx = (canon[u].x - canon[v].x).abs();
            let dy = (canon[u].y - canon[v].y).abs();
            let dx = dx.min(width - dx);
            let dy = dy.min(height - dy);
            if dx * dx + dy * dy <= r2 {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::deploy;

    #[test]
    fn adjacency_matches_brute_force() {
        let pts = deploy::uniform(200, 6.0, 6.0, 13);
        let udg = UnitDiskGraph::build(pts.clone(), 1.0);
        for u in 0..pts.len() {
            for v in (u + 1)..pts.len() {
                assert_eq!(
                    udg.graph().has_edge(u, v),
                    pts[u].within(pts[v], 1.0),
                    "pair ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn radius_is_inclusive() {
        let udg =
            UnitDiskGraph::build(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], 1.0);
        assert!(udg.graph().has_edge(0, 1));
    }

    #[test]
    fn non_unit_radius_supported() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.5, 0.0)];
        assert!(!UnitDiskGraph::build(pts.clone(), 1.0).graph().has_edge(0, 1));
        assert!(UnitDiskGraph::build(pts, 2.0).graph().has_edge(0, 1));
    }

    #[test]
    fn edge_length_is_euclidean() {
        let udg =
            UnitDiskGraph::build(vec![Point::new(0.0, 0.0), Point::new(0.6, 0.8)], 1.0);
        assert!((udg.edge_length(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn edge_length_panics_for_non_edge() {
        let udg =
            UnitDiskGraph::build(vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)], 1.0);
        let _ = udg.edge_length(0, 1);
    }

    #[test]
    fn chain_topology_is_a_path() {
        let udg = UnitDiskGraph::build(deploy::chain(10, 0.9), 1.0);
        assert_eq!(udg.graph().edge_count(), 9);
        assert_eq!(udg.graph().degree(0), 1);
        assert_eq!(udg.graph().degree(5), 2);
    }

    #[test]
    fn dense_cluster_is_complete() {
        // 8 points inside a disk of diameter < 1 form a clique.
        let pts = deploy::gaussian_blob(8, 1.0, 1.0, 0.05, 21);
        let udg = UnitDiskGraph::build(pts, 1.0);
        assert_eq!(udg.graph().edge_count(), 8 * 7 / 2);
    }

    #[test]
    fn rebuild_preserves_radius_and_count() {
        let pts = deploy::uniform(50, 4.0, 4.0, 2);
        let udg = UnitDiskGraph::build(pts, 1.0);
        let moved = deploy::perturb(udg.points(), wcds_geom::BoundingBox::with_size(4.0, 4.0), 0.1, 3);
        let udg2 = udg.rebuilt_with(moved);
        assert_eq!(udg2.node_count(), 50);
        assert_eq!(udg2.radius(), 1.0);
    }

    #[test]
    fn torus_wraps_across_borders() {
        // two points near opposite vertical borders of a 10-wide torus
        let pts = vec![Point::new(0.2, 5.0), Point::new(9.9, 5.0)];
        let flat = UnitDiskGraph::build(pts.clone(), 1.0);
        assert!(!flat.graph().has_edge(0, 1));
        let torus = UnitDiskGraph::build_torus(pts, 1.0, 10.0, 10.0);
        assert!(torus.graph().has_edge(0, 1), "wrap distance 0.3 must connect");
    }

    #[test]
    fn torus_is_superset_of_flat_adjacency() {
        let pts = deploy::uniform(120, 6.0, 6.0, 8);
        let flat = UnitDiskGraph::build(pts.clone(), 1.0);
        let torus = UnitDiskGraph::build_torus(pts, 1.0, 6.0, 6.0);
        for e in flat.graph().edges() {
            let (u, v) = e.endpoints();
            assert!(torus.graph().has_edge(u, v), "torus lost flat edge ({u},{v})");
        }
        assert!(torus.graph().edge_count() >= flat.graph().edge_count());
    }

    #[test]
    fn torus_grid_matches_brute_force() {
        // the pre-grid O(n²) reference: min-wrap metric, all pairs
        let torus_dist2 = |a: Point, b: Point, w: f64, h: f64| -> f64 {
            let dx = (a.x - b.x).abs();
            let dy = (a.y - b.y).abs();
            let dx = dx.min(w - dx);
            let dy = dy.min(h - dy);
            dx * dx + dy * dy
        };
        for seed in [1, 9, 42, 1234] {
            let (w, h) = (5.0, 4.0);
            let pts = deploy::uniform(160, w, h, seed);
            let mut reference = GraphBuilder::new(pts.len());
            for u in 0..pts.len() {
                for v in (u + 1)..pts.len() {
                    if torus_dist2(pts[u], pts[v], w, h) <= 1.0 {
                        reference.add_edge(u, v);
                    }
                }
            }
            let torus = UnitDiskGraph::build_torus(pts, 1.0, w, h);
            assert_eq!(*torus.graph(), reference.build(), "seed {seed}");
        }
    }

    #[test]
    fn torus_radius_at_exactly_half_dimension() {
        // r = width/2: a neighbor can qualify under two translates at
        // once; the builder must dedup, not double-add
        let pts = vec![Point::new(0.0, 1.0), Point::new(1.0, 1.0), Point::new(0.5, 1.0)];
        let torus = UnitDiskGraph::build_torus(pts, 1.0, 2.0, 2.0);
        assert_eq!(torus.graph().edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "half each torus dimension")]
    fn torus_rejects_oversized_radius() {
        let _ = UnitDiskGraph::build_torus(vec![Point::origin()], 2.0, 3.0, 3.0);
    }

    #[test]
    fn total_edge_length_sums_edges() {
        let udg = UnitDiskGraph::build(deploy::chain(4, 0.5), 1.0);
        // chain(4, 0.5): edges 0-1,1-2,2-3 at 0.5 plus 0-2,1-3 at 1.0
        assert!((udg.total_edge_length() - (3.0 * 0.5 + 2.0 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn grid_and_direct_builders_are_identical() {
        // straddle the occupancy threshold on both sides: the three code
        // paths must be observationally equivalent everywhere
        for (n, side, seed) in [(150, 4.0, 5), (400, 12.0, 6), (900, 30.0, 7)] {
            let pts = deploy::uniform(n, side, side, seed);
            let want = direct_scan(&pts, 1.0);
            assert_eq!(grid_scan(&pts, 1.0), want, "flat hash n={n} side={side}");
            assert_eq!(dense_scan(&pts, 1.0, 1), want, "flat dense n={n} side={side}");
            assert_eq!(
                torus_grid_scan(&pts, 1.0, side, side),
                torus_direct_scan(&pts, 1.0, side, side),
                "torus n={n} side={side}"
            );
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        // thread count must never leak into the adjacency: rows are
        // per-node, sorted locally, concatenated in node order
        for (n, side, seed) in [(800, 9.0, 17), (2500, 16.0, 18)] {
            let pts = deploy::uniform(n, side, side, seed);
            let serial = UnitDiskGraph::build_with_threads(pts.clone(), 1.0, 1);
            for nthreads in [2, 3, 8] {
                let par = UnitDiskGraph::build_with_threads(pts.clone(), 1.0, nthreads);
                assert_eq!(par.graph(), serial.graph(), "n={n} nthreads={nthreads}");
            }
            assert_eq!(*serial.graph(), legacy_reference(&pts, 1.0), "n={n}");
        }
    }

    /// Quadratic reference used by the thread-identity test.
    fn legacy_reference(points: &[Point], radius: f64) -> Graph {
        direct_scan(points, radius)
    }

    #[test]
    fn sparse_scatter_takes_the_hash_index() {
        // huge extent, few points per cell: dense cell array would be
        // ~99% empty — the heuristic must route to the hash fallback
        assert!(dense_grid_wasteful(2000, 1.0, 400.0, 400.0));
        assert!(!dense_grid_wasteful(100_000, 1.0, 170.0, 170.0));
        // and the fallback stays correct
        let pts = deploy::uniform(3000, 300.0, 300.0, 31);
        let built = UnitDiskGraph::build(pts.clone(), 1.0);
        assert_eq!(*built.graph(), grid_scan(&pts, 1.0));
    }

    #[test]
    fn occupancy_heuristic_tracks_both_regimes() {
        // small or sparse deployments take the direct scan...
        assert!(grid_is_overkill(500, 1.0, 10.0, 10.0));
        assert!(grid_is_overkill(1000, 1.0, 200.0, 200.0));
        // ...a dense blob occupying a handful of cells always does...
        assert!(grid_is_overkill(100_000, 1.0, 2.0, 2.0));
        // ...and big well-spread deployments keep the grid
        assert!(!grid_is_overkill(5000, 1.0, 22.0, 22.0));
        assert!(!grid_is_overkill(100_000, 1.0, 100.0, 100.0));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = UnitDiskGraph::build(vec![], 1.0);
        assert_eq!(empty.node_count(), 0);
        let single = UnitDiskGraph::build(vec![Point::origin()], 1.0);
        assert_eq!(single.graph().edge_count(), 0);
    }
}
