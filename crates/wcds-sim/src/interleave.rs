//! Exhaustive bounded-interleaving exploration for shared-memory
//! step machines — a mini model checker.
//!
//! The message-passing [`Simulator`](crate::Simulator) samples *one*
//! schedule per seed. For small shared-memory protocols (a handful of
//! threads, a handful of atomic steps each) that is the wrong tool:
//! the interesting bugs live in specific interleavings, and the state
//! space is small enough to enumerate **completely**. This module does
//! exactly that: depth-first enumeration of every schedule of a set of
//! [`Interleaved`] threads over a cloneable shared state, with an
//! invariant inspected after every step.
//!
//! The model is sequentially consistent: one thread executes one
//! [`Interleaved::step`] at a time, atomically. Blocking primitives
//! (locks, condition waits) are modelled through
//! [`Interleaved::enabled`]: a disabled thread is simply never
//! scheduled until the shared state re-enables it. If no runnable
//! thread is enabled the explorer reports a deadlock for that schedule.
//!
//! Exhaustiveness bound: `k` threads of at most `s` steps each explore
//! at most `(k·s)! / (s!)^k` schedules — for the sizes this crate
//! targets (≤ 4 threads, ≤ 6 steps) that is a few thousand schedules
//! and runs in microseconds.
//!
//! # Examples
//!
//! A torn read-modify-write increment is caught; an atomic one is not:
//!
//! ```
//! use wcds_sim::interleave::{explore, Interleaved};
//!
//! #[derive(Clone)]
//! struct TornInc { loaded: Option<u64>, done: bool }
//!
//! impl Interleaved for TornInc {
//!     type Shared = u64;
//!     fn done(&self) -> bool { self.done }
//!     fn enabled(&self, _: &u64) -> bool { true }
//!     fn step(&mut self, shared: &mut u64) {
//!         match self.loaded.take() {
//!             None => self.loaded = Some(*shared),     // load
//!             Some(v) => { *shared = v + 1; self.done = true } // store
//!         }
//!     }
//! }
//!
//! let threads = vec![TornInc { loaded: None, done: false }; 2];
//! let result = explore(&0u64, &threads, |shared, threads, _| {
//!     if threads.iter().all(Interleaved::done) && *shared != 2 {
//!         return Err(format!("lost update: counter = {shared}"));
//!     }
//!     Ok(())
//! });
//! assert!(result.is_err()); // some interleaving loses an update
//! ```

use std::error::Error;
use std::fmt;

/// One thread of a shared-memory step machine.
///
/// `Clone` is required because the explorer branches: at every
/// scheduling point each enabled thread is tried on a copy of the
/// current world.
pub trait Interleaved: Clone {
    /// The state shared by every thread (memory, locks, counters).
    type Shared: Clone;

    /// Whether this thread has run to completion.
    fn done(&self) -> bool;

    /// Whether this thread can take a step right now (e.g. the lock it
    /// wants is free). A thread that is not done and not enabled is
    /// blocked; the explorer schedules around it.
    fn enabled(&self, shared: &Self::Shared) -> bool;

    /// Executes one atomic step against the shared state.
    fn step(&mut self, shared: &mut Self::Shared);
}

/// Aggregate outcome of a completed exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explored {
    /// Number of complete schedules (maximal interleavings) enumerated.
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
}

/// A safety failure found during exploration, with the exact schedule
/// (sequence of thread indices) that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterleaveError {
    /// The invariant callback rejected a reachable state.
    InvariantViolated {
        /// Thread indices in execution order up to the failing step.
        schedule: Vec<usize>,
        /// The callback's explanation.
        message: String,
    },
    /// A reachable state has unfinished threads but none enabled.
    Deadlock {
        /// Thread indices in execution order up to the stuck state.
        schedule: Vec<usize>,
        /// Indices of the blocked (not done, not enabled) threads.
        blocked: Vec<usize>,
    },
    /// The schedule budget was exhausted before the space was covered
    /// (the model is larger than this explorer is meant for).
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterleaveError::InvariantViolated { schedule, message } => {
                write!(f, "invariant violated under schedule {schedule:?}: {message}")
            }
            InterleaveError::Deadlock { schedule, blocked } => {
                write!(f, "deadlock under schedule {schedule:?}: threads {blocked:?} blocked")
            }
            InterleaveError::BudgetExhausted { budget } => {
                write!(f, "exploration exceeded the {budget}-schedule budget")
            }
        }
    }
}

impl Error for InterleaveError {}

/// Default schedule budget for [`explore`].
pub const DEFAULT_BUDGET: u64 = 10_000_000;

/// Exhaustively explores every interleaving of `threads` from `shared`,
/// calling `invariant` after each executed step with the shared state,
/// the thread states, and the schedule so far.
///
/// Equivalent to [`explore_bounded`] with [`DEFAULT_BUDGET`].
///
/// # Errors
///
/// See [`explore_bounded`].
pub fn explore<T: Interleaved>(
    shared: &T::Shared,
    threads: &[T],
    mut invariant: impl FnMut(&T::Shared, &[T], &[usize]) -> Result<(), String>,
) -> Result<Explored, InterleaveError> {
    explore_bounded(shared, threads, DEFAULT_BUDGET, &mut invariant)
}

/// Invariant callback checked after every step: receives the shared
/// state, the thread states, and the schedule prefix that produced
/// them.
pub type Invariant<'a, T> =
    dyn FnMut(&<T as Interleaved>::Shared, &[T], &[usize]) -> Result<(), String> + 'a;

/// [`explore`] with an explicit schedule budget.
///
/// # Errors
///
/// [`InterleaveError::InvariantViolated`] on the first rejected state
/// (depth-first order, so the reported schedule is minimal in its
/// branch), [`InterleaveError::Deadlock`] if some reachable state has
/// unfinished threads with none enabled, and
/// [`InterleaveError::BudgetExhausted`] if more than `budget` complete
/// schedules exist.
pub fn explore_bounded<T: Interleaved>(
    shared: &T::Shared,
    threads: &[T],
    budget: u64,
    invariant: &mut Invariant<'_, T>,
) -> Result<Explored, InterleaveError> {
    let mut explored = Explored { schedules: 0, steps: 0 };
    let mut schedule = Vec::new();
    dfs(shared, threads, &mut schedule, budget, &mut explored, invariant)?;
    Ok(explored)
}

fn dfs<T: Interleaved>(
    shared: &T::Shared,
    threads: &[T],
    schedule: &mut Vec<usize>,
    budget: u64,
    explored: &mut Explored,
    invariant: &mut Invariant<'_, T>,
) -> Result<(), InterleaveError> {
    let runnable: Vec<usize> =
        (0..threads.len()).filter(|&i| !threads[i].done()).collect();
    if runnable.is_empty() {
        explored.schedules += 1;
        if explored.schedules > budget {
            return Err(InterleaveError::BudgetExhausted { budget });
        }
        return Ok(());
    }
    let enabled: Vec<usize> =
        runnable.iter().copied().filter(|&i| threads[i].enabled(shared)).collect();
    if enabled.is_empty() {
        return Err(InterleaveError::Deadlock { schedule: schedule.clone(), blocked: runnable });
    }
    for i in enabled {
        let mut shared = shared.clone();
        let mut threads = threads.to_vec();
        threads[i].step(&mut shared);
        explored.steps += 1;
        schedule.push(i);
        invariant(&shared, &threads, schedule).map_err(|message| {
            InterleaveError::InvariantViolated { schedule: schedule.clone(), message }
        })?;
        dfs(&shared, &threads, schedule, budget, explored, invariant)?;
        schedule.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-step (load, store) increment: the classic lost update.
    #[derive(Clone)]
    struct Torn {
        loaded: Option<u64>,
        done: bool,
    }

    impl Interleaved for Torn {
        type Shared = u64;
        fn done(&self) -> bool {
            self.done
        }
        fn enabled(&self, _: &u64) -> bool {
            true
        }
        fn step(&mut self, shared: &mut u64) {
            match self.loaded.take() {
                None => self.loaded = Some(*shared),
                Some(v) => {
                    *shared = v + 1;
                    self.done = true;
                }
            }
        }
    }

    /// Single-step atomic increment.
    #[derive(Clone)]
    struct Atomic {
        done: bool,
    }

    impl Interleaved for Atomic {
        type Shared = u64;
        fn done(&self) -> bool {
            self.done
        }
        fn enabled(&self, _: &u64) -> bool {
            true
        }
        fn step(&mut self, shared: &mut u64) {
            *shared += 1;
            self.done = true;
        }
    }

    /// Mutex-guarded two-step increment: `enabled` models the lock.
    #[derive(Clone)]
    struct Locked {
        holding: bool,
        loaded: Option<u64>,
        done: bool,
    }

    #[derive(Clone, Default)]
    struct LockedShared {
        counter: u64,
        locked: bool,
    }

    impl Interleaved for Locked {
        type Shared = LockedShared;
        fn done(&self) -> bool {
            self.done
        }
        fn enabled(&self, shared: &LockedShared) -> bool {
            self.holding || !shared.locked
        }
        fn step(&mut self, shared: &mut LockedShared) {
            if !self.holding {
                shared.locked = true;
                self.holding = true;
            } else {
                match self.loaded.take() {
                    None => self.loaded = Some(shared.counter),
                    Some(v) => {
                        shared.counter = v + 1;
                        shared.locked = false;
                        self.holding = false;
                        self.done = true;
                    }
                }
            }
        }
    }

    fn all_done<T: Interleaved>(threads: &[T]) -> bool {
        threads.iter().all(Interleaved::done)
    }

    #[test]
    fn torn_increment_loses_an_update() {
        let threads = vec![Torn { loaded: None, done: false }; 2];
        let result = explore(&0u64, &threads, |shared, threads, _| {
            if all_done(threads) && *shared != 2 {
                return Err(format!("counter = {shared}"));
            }
            Ok(())
        });
        assert!(matches!(result, Err(InterleaveError::InvariantViolated { .. })), "{result:?}");
    }

    #[test]
    fn atomic_increment_never_loses_and_counts_schedules() {
        let threads = vec![Atomic { done: false }; 3];
        let explored = explore(&0u64, &threads, |shared, threads, _| {
            if all_done(threads) && *shared != 3 {
                return Err(format!("counter = {shared}"));
            }
            Ok(())
        })
        .unwrap();
        // 3 threads x 1 step: 3! = 6 schedules, 3 steps each
        assert_eq!(explored, Explored { schedules: 6, steps: 6 + 6 + 3 });
    }

    #[test]
    fn two_thread_interleaving_count_is_exact() {
        // 2 threads x 2 steps: C(4, 2) = 6 maximal schedules
        let threads = vec![Torn { loaded: None, done: false }; 2];
        let explored = explore(&0u64, &threads, |_, _, _| Ok(())).unwrap();
        assert_eq!(explored.schedules, 6);
    }

    #[test]
    fn lock_modelled_via_enabled_serializes_critical_sections() {
        let threads = vec![Locked { holding: false, loaded: None, done: false }; 2];
        let explored = explore(&LockedShared::default(), &threads, |shared, threads, _| {
            if all_done(threads) && shared.counter != 2 {
                return Err(format!("counter = {}", shared.counter));
            }
            Ok(())
        })
        .unwrap();
        // the lock collapses the interleavings to the 2 serial orders
        assert_eq!(explored.schedules, 2);
    }

    #[test]
    fn deadlock_is_reported() {
        /// Acquires the lock and never releases it.
        #[derive(Clone)]
        struct Hog {
            holding: bool,
        }
        impl Interleaved for Hog {
            type Shared = LockedShared;
            fn done(&self) -> bool {
                false
            }
            fn enabled(&self, shared: &LockedShared) -> bool {
                !self.holding && !shared.locked
            }
            fn step(&mut self, shared: &mut LockedShared) {
                shared.locked = true;
                self.holding = true;
            }
        }
        let threads = vec![Hog { holding: false }; 2];
        let result = explore(&LockedShared::default(), &threads, |_, _, _| Ok(()));
        assert!(matches!(result, Err(InterleaveError::Deadlock { .. })), "{result:?}");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let threads = vec![Atomic { done: false }; 4];
        let result = explore_bounded(&0u64, &threads, 3, &mut |_, _, _| Ok(()));
        assert_eq!(result, Err(InterleaveError::BudgetExhausted { budget: 3 }));
    }
}
