use crate::{ProcId, Time, TraceLog};
use std::collections::BTreeMap;
use std::fmt;

/// Per-node and per-kind message transmission counters.
///
/// One local broadcast or unicast = one counted message, matching the
/// paper's accounting ("each node sends only a constant number of
/// messages" ⇒ `O(n)` messages total).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageStats {
    per_node: Vec<u64>,
    per_kind: BTreeMap<&'static str, u64>,
    payload_per_kind: BTreeMap<&'static str, u64>,
    deliveries: u64,
}

impl MessageStats {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            per_node: vec![0; n],
            per_kind: BTreeMap::new(),
            payload_per_kind: BTreeMap::new(),
            deliveries: 0,
        }
    }

    pub(crate) fn record_send(&mut self, from: ProcId, kind: &'static str, payload: u64) {
        self.per_node[from] += 1;
        *self.per_kind.entry(kind).or_insert(0) += 1;
        *self.payload_per_kind.entry(kind).or_insert(0) += payload;
    }

    pub(crate) fn record_delivery(&mut self) {
        self.deliveries += 1;
    }

    /// Total messages transmitted across all nodes.
    pub fn total(&self) -> u64 {
        self.per_node.iter().sum()
    }

    /// Messages transmitted by node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn sent_by(&self, u: ProcId) -> u64 {
        self.per_node[u]
    }

    /// The maximum number of messages any single node transmitted.
    pub fn max_per_node(&self) -> u64 {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// Messages of a given kind (as labelled by
    /// [`crate::Protocol::message_kind`]).
    pub fn of_kind(&self, kind: &str) -> u64 {
        self.per_kind.get(kind).copied().unwrap_or(0)
    }

    /// Iterator over `(kind, count)` pairs in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.per_kind.iter().map(|(&k, &v)| (k, v))
    }

    /// Total point-to-point deliveries (a broadcast to `d` neighbors
    /// counts `d` here but 1 in [`MessageStats::total`]).
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Total abstract payload transmitted (see
    /// [`crate::Protocol::message_payload`]).
    pub fn total_payload(&self) -> u64 {
        self.payload_per_kind.values().sum()
    }

    /// Payload transmitted under a given message kind.
    pub fn payload_of_kind(&self, kind: &str) -> u64 {
        self.payload_per_kind.get(kind).copied().unwrap_or(0)
    }
}

impl fmt::Display for MessageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} msgs (", self.total())?;
        let mut first = true;
        for (k, v) in &self.per_kind {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
            first = false;
        }
        write!(f, ")")
    }
}

/// The outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Synchronous rounds executed (0 for asynchronous runs).
    pub rounds: u64,
    /// Final virtual time (equals `rounds` under the synchronous
    /// schedule; the last delivery instant under the asynchronous one).
    pub time: Time,
    /// Message counters.
    pub messages: MessageStats,
    /// Number of protocol callbacks executed (start + message + timer) —
    /// a proxy for total computation.
    pub events: u64,
    /// The event trace, if the schedule enabled tracing (empty
    /// otherwise).
    pub trace: TraceLog,
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "time {} · {} · {} events", self.time, self.messages, self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = MessageStats::new(3);
        s.record_send(0, "A", 1);
        s.record_send(0, "B", 1);
        s.record_send(2, "A", 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.sent_by(0), 2);
        assert_eq!(s.sent_by(1), 0);
        assert_eq!(s.of_kind("A"), 2);
        assert_eq!(s.of_kind("C"), 0);
        assert_eq!(s.max_per_node(), 2);
    }

    #[test]
    fn kinds_iterates_sorted() {
        let mut s = MessageStats::new(1);
        s.record_send(0, "Z", 1);
        s.record_send(0, "A", 1);
        let kinds: Vec<_> = s.kinds().collect();
        assert_eq!(kinds, vec![("A", 1), ("Z", 1)]);
    }

    #[test]
    fn display_nonempty() {
        let mut s = MessageStats::new(1);
        s.record_send(0, "GRAY", 1);
        assert!(format!("{s}").contains("GRAY"));
        let r =
            SimReport { rounds: 2, time: 2, messages: s, events: 4, trace: TraceLog::disabled() };
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn deliveries_separate_from_sends() {
        let mut s = MessageStats::new(2);
        s.record_send(0, "m", 1);
        s.record_delivery();
        s.record_delivery();
        assert_eq!(s.total(), 1);
        assert_eq!(s.deliveries(), 2);
    }
}
