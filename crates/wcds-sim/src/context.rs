use crate::{ProcId, Time};

/// What one send primitive produced: a local broadcast or a unicast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Outgoing<M> {
    /// Delivered to every 1-hop neighbor; charged as **one** message
    /// (radio broadcast).
    Broadcast(M),
    /// Delivered to a single neighbor; also one message.
    Unicast(ProcId, M),
}

/// A node's window onto the network during a callback.
///
/// The context exposes exactly what the paper allows a node to know:
/// its own identifier, the identifiers of its 1-hop neighbors, and the
/// current virtual time. Sending is buffered; the simulator flushes the
/// buffer when the callback returns.
#[derive(Debug)]
pub struct Context<'a, M> {
    id: ProcId,
    neighbors: &'a [ProcId],
    now: Time,
    pub(crate) outgoing: Vec<Outgoing<M>>,
    pub(crate) timers: Vec<Time>,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(id: ProcId, neighbors: &'a [ProcId], now: Time) -> Self {
        Self { id, neighbors, now, outgoing: Vec::new(), timers: Vec::new() }
    }

    /// This node's identifier.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The sorted identifiers of this node's 1-hop neighbors.
    #[inline]
    pub fn neighbors(&self) -> &[ProcId] {
        self.neighbors
    }

    /// Number of neighbors.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether `other` is a 1-hop neighbor.
    pub fn is_neighbor(&self, other: ProcId) -> bool {
        self.neighbors.binary_search(&other).is_ok()
    }

    /// Current virtual time (round number under the synchronous schedule).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Broadcasts `msg` to every 1-hop neighbor.
    ///
    /// Charged as **one** transmitted message regardless of degree — this
    /// is the radio model the paper's `O(n)` message bounds assume ("each
    /// node sends only a constant number of messages").
    pub fn broadcast(&mut self, msg: M) {
        self.outgoing.push(Outgoing::Broadcast(msg));
    }

    /// Sends `msg` to the single neighbor `to`; charged as one message.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a 1-hop neighbor — a radio cannot address a
    /// node it cannot hear.
    pub fn send(&mut self, to: ProcId, msg: M) {
        assert!(
            self.is_neighbor(to),
            "node {} cannot unicast to non-neighbor {to}",
            self.id
        );
        self.outgoing.push(Outgoing::Unicast(to, msg));
    }

    /// Schedules [`crate::Protocol::on_timer`] to fire after `delay`
    /// time units (at least 1).
    pub fn set_timer(&mut self, delay: Time) {
        self.timers.push(self.now + delay.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_construction() {
        let nbrs = [1, 4, 7];
        let ctx: Context<'_, ()> = Context::new(3, &nbrs, 5);
        assert_eq!(ctx.id(), 3);
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.now(), 5);
        assert!(ctx.is_neighbor(4));
        assert!(!ctx.is_neighbor(3));
    }

    #[test]
    fn broadcast_buffers_one_entry() {
        let nbrs = [1, 2];
        let mut ctx: Context<'_, u8> = Context::new(0, &nbrs, 0);
        ctx.broadcast(9);
        assert_eq!(ctx.outgoing.len(), 1);
        assert_eq!(ctx.outgoing[0], Outgoing::Broadcast(9));
    }

    #[test]
    fn unicast_to_neighbor_ok() {
        let nbrs = [2];
        let mut ctx: Context<'_, u8> = Context::new(0, &nbrs, 0);
        ctx.send(2, 7);
        assert_eq!(ctx.outgoing[0], Outgoing::Unicast(2, 7));
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn unicast_to_stranger_panics() {
        let nbrs = [2];
        let mut ctx: Context<'_, u8> = Context::new(0, &nbrs, 0);
        ctx.send(3, 7);
    }

    #[test]
    fn timer_fires_strictly_later() {
        let nbrs: [ProcId; 0] = [];
        let mut ctx: Context<'_, ()> = Context::new(0, &nbrs, 10);
        ctx.set_timer(0);
        ctx.set_timer(5);
        assert_eq!(ctx.timers, vec![11, 15]);
    }
}
