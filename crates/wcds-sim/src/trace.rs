use crate::{ProcId, Time};
use std::fmt;

/// One observable event in a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node's `on_start` callback ran.
    Start { node: ProcId, time: Time },
    /// A message was transmitted (one entry per send primitive, not per
    /// delivery).
    Send { from: ProcId, kind: &'static str, time: Time },
    /// A message was delivered to a node.
    Deliver { from: ProcId, to: ProcId, kind: &'static str, time: Time },
    /// A delivery was dropped by fault injection.
    Drop { from: ProcId, to: ProcId, time: Time },
    /// A timer fired.
    Timer { node: ProcId, time: Time },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Start { node, time } => write!(f, "[{time}] start {node}"),
            TraceEvent::Send { from, kind, time } => write!(f, "[{time}] send {from} {kind}"),
            TraceEvent::Deliver { from, to, kind, time } => {
                write!(f, "[{time}] deliver {from}->{to} {kind}")
            }
            TraceEvent::Drop { from, to, time } => write!(f, "[{time}] drop {from}->{to}"),
            TraceEvent::Timer { node, time } => write!(f, "[{time}] timer {node}"),
        }
    }
}

/// A bounded event log.
///
/// Disabled by default (zero cost); enable with a capacity to debug a
/// protocol run. When the capacity is reached, further events are counted
/// but not stored.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    overflow: u64,
}

impl TraceLog {
    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A log retaining up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { events: Vec::new(), capacity, overflow: 0 }
    }

    /// Whether this log records anything.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else if self.capacity > 0 {
            self.overflow += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were discarded after the log filled up.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ev in &self.events {
            writeln!(f, "{ev}")?;
        }
        if self.overflow > 0 {
            writeln!(f, "... {} more events dropped", self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.push(TraceEvent::Start { node: 0, time: 0 });
        assert!(log.events().is_empty());
        assert_eq!(log.overflow(), 0);
        assert!(!log.is_enabled());
    }

    #[test]
    fn bounded_log_counts_overflow() {
        let mut log = TraceLog::with_capacity(2);
        for t in 0..5 {
            log.push(TraceEvent::Timer { node: 0, time: t });
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.overflow(), 3);
    }

    #[test]
    fn display_formats_events() {
        let mut log = TraceLog::with_capacity(8);
        log.push(TraceEvent::Send { from: 1, kind: "GRAY", time: 3 });
        log.push(TraceEvent::Deliver { from: 1, to: 2, kind: "GRAY", time: 4 });
        let s = format!("{log}");
        assert!(s.contains("send 1 GRAY"));
        assert!(s.contains("deliver 1->2"));
    }
}
