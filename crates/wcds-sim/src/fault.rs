use crate::ProcId;
use wcds_rng::{ChaCha12Rng, Rng};
use std::collections::BTreeSet;

/// Fault injection for robustness testing.
///
/// The paper's constructions assume a reliable network; the fault plan
/// lets tests probe what that assumption buys. Faults are applied
/// deterministically from a seed, so a failing fault test replays
/// exactly.
///
/// # Examples
///
/// ```
/// use wcds_sim::FaultPlan;
///
/// let plan = FaultPlan::new(7).crash(3).drop_probability(0.1);
/// assert!(plan.is_crashed(3));
/// assert!(!plan.is_crashed(0));
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    crashed: BTreeSet<ProcId>,
    drop_p: f64,
    duplicate_p: f64,
    rng: ChaCha12Rng,
}

impl FaultPlan {
    /// A fault plan with no faults and the given randomness seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crashed: BTreeSet::new(),
            drop_p: 0.0,
            duplicate_p: 0.0,
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Marks `node` as crashed from the start: it never starts, never
    /// sends, never receives.
    pub fn crash(mut self, node: ProcId) -> Self {
        self.crashed.insert(node);
        self
    }

    /// A **targeted storm**: crashes `⌈fraction · targets.len()⌉` of
    /// the given nodes (e.g. a backbone's dominators), chosen by a
    /// dedicated RNG derived from the plan seed and `salt`.
    ///
    /// The storm draws from its own `ChaCha12` stream
    /// (`seed ^ salt`-keyed), so adding or reordering storms never
    /// perturbs the delivery fates of the base plan — a failing run
    /// replays exactly. Duplicate targets are ignored; selection is a
    /// partial Fisher–Yates over the deduplicated, sorted target list,
    /// so the same `(seed, salt, targets, fraction)` always kills the
    /// same set.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn crash_fraction_of(mut self, targets: &[ProcId], fraction: f64, salt: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range: {fraction}");
        let mut pool: Vec<ProcId> = targets.to_vec();
        pool.sort_unstable();
        pool.dedup();
        let kill = (fraction * pool.len() as f64).ceil() as usize;
        let kill = kill.min(pool.len());
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed ^ salt);
        for i in 0..kill {
            let j = i + rng.gen_range(0..pool.len() - i);
            pool.swap(i, j);
        }
        self.crashed.extend(pool.iter().take(kill).copied());
        self
    }

    /// A **region-kill storm**: crashes every node whose position falls
    /// inside the axis-aligned rectangle `[x0, x1] × [y0, y1]`
    /// (inclusive). `positions[i]` is node `i`'s coordinates — raw
    /// tuples so the simulator stays geometry-crate-free.
    ///
    /// Deterministic by construction (no randomness involved).
    pub fn crash_region(
        mut self,
        positions: &[(f64, f64)],
        (x0, y0): (f64, f64),
        (x1, y1): (f64, f64),
    ) -> Self {
        for (i, &(x, y)) in positions.iter().enumerate() {
            if (x0..=x1).contains(&x) && (y0..=y1).contains(&y) {
                self.crashed.insert(i);
            }
        }
        self
    }

    /// Each delivery is independently dropped with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.drop_p = p;
        self
    }

    /// Each delivery is independently duplicated with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.duplicate_p = p;
        self
    }

    /// Whether `node` is crashed.
    pub fn is_crashed(&self, node: ProcId) -> bool {
        self.crashed.contains(&node)
    }

    /// The crashed node set.
    pub fn crashed_nodes(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.crashed.iter().copied()
    }

    /// Decides the fate of one delivery: `0` = dropped, `1` = delivered,
    /// `2` = delivered twice.
    pub(crate) fn delivery_copies(&mut self) -> u8 {
        if self.drop_p > 0.0 && self.rng.gen::<f64>() < self.drop_p {
            0
        } else if self.duplicate_p > 0.0 && self.rng.gen::<f64>() < self.duplicate_p {
            2
        } else {
            1
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_faultless() {
        let mut p = FaultPlan::default();
        assert!(!p.is_crashed(0));
        for _ in 0..100 {
            assert_eq!(p.delivery_copies(), 1);
        }
    }

    #[test]
    fn crash_set_is_queryable() {
        let p = FaultPlan::new(1).crash(2).crash(5);
        assert_eq!(p.crashed_nodes().collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut p = FaultPlan::new(1).drop_probability(1.0);
        for _ in 0..50 {
            assert_eq!(p.delivery_copies(), 0);
        }
    }

    #[test]
    fn duplicate_probability_one_duplicates_everything() {
        let mut p = FaultPlan::new(1).duplicate_probability(1.0);
        for _ in 0..50 {
            assert_eq!(p.delivery_copies(), 2);
        }
    }

    #[test]
    fn same_seed_same_fates() {
        let mut a = FaultPlan::new(9).drop_probability(0.5);
        let mut b = FaultPlan::new(9).drop_probability(0.5);
        let fa: Vec<u8> = (0..200).map(|_| a.delivery_copies()).collect();
        let fb: Vec<u8> = (0..200).map(|_| b.delivery_copies()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_panics() {
        let _ = FaultPlan::new(0).drop_probability(1.5);
    }

    #[test]
    fn targeted_storm_kills_the_requested_fraction_deterministically() {
        let targets: Vec<ProcId> = (0..40).map(|i| i * 3).collect();
        let a = FaultPlan::new(7).crash_fraction_of(&targets, 0.25, 1);
        let b = FaultPlan::new(7).crash_fraction_of(&targets, 0.25, 1);
        let ka: Vec<ProcId> = a.crashed_nodes().collect();
        let kb: Vec<ProcId> = b.crashed_nodes().collect();
        assert_eq!(ka, kb, "same (seed, salt) must kill the same set");
        assert_eq!(ka.len(), 10, "⌈0.25 · 40⌉ = 10");
        assert!(ka.iter().all(|k| targets.contains(k)), "kills outside target set");
        // a different salt draws from a different stream
        let c = FaultPlan::new(7).crash_fraction_of(&targets, 0.25, 2);
        assert_ne!(ka, c.crashed_nodes().collect::<Vec<_>>());
    }

    #[test]
    fn targeted_storm_handles_edge_fractions_and_duplicates() {
        let p = FaultPlan::new(1).crash_fraction_of(&[5, 5, 5, 9], 1.0, 0);
        assert_eq!(p.crashed_nodes().collect::<Vec<_>>(), vec![5, 9]);
        let p = FaultPlan::new(1).crash_fraction_of(&[1, 2, 3], 0.0, 0);
        assert_eq!(p.crashed_nodes().count(), 0);
        let p = FaultPlan::new(1).crash_fraction_of(&[], 0.5, 0);
        assert_eq!(p.crashed_nodes().count(), 0);
    }

    #[test]
    fn storms_do_not_perturb_delivery_fates() {
        // the replay guarantee: adding a storm must leave the base
        // plan's drop/duplicate stream untouched
        let mut base = FaultPlan::new(9).drop_probability(0.5);
        let mut stormy = FaultPlan::new(9)
            .drop_probability(0.5)
            .crash_fraction_of(&[100, 101, 102, 103], 0.5, 77)
            .crash_region(&[(0.0, 0.0), (5.0, 5.0)], (4.0, 4.0), (6.0, 6.0));
        let fa: Vec<u8> = (0..200).map(|_| base.delivery_copies()).collect();
        let fb: Vec<u8> = (0..200).map(|_| stormy.delivery_copies()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn region_kill_is_inclusive_and_deterministic() {
        let positions = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 0.5)];
        let p = FaultPlan::new(0).crash_region(&positions, (1.0, 0.0), (3.0, 1.0));
        assert_eq!(p.crashed_nodes().collect::<Vec<_>>(), vec![1, 3]);
        assert!(!p.is_crashed(0) && !p.is_crashed(2));
    }
}
