use crate::ProcId;
use wcds_rng::{ChaCha12Rng, Rng};
use std::collections::BTreeSet;

/// Fault injection for robustness testing.
///
/// The paper's constructions assume a reliable network; the fault plan
/// lets tests probe what that assumption buys. Faults are applied
/// deterministically from a seed, so a failing fault test replays
/// exactly.
///
/// # Examples
///
/// ```
/// use wcds_sim::FaultPlan;
///
/// let plan = FaultPlan::new(7).crash(3).drop_probability(0.1);
/// assert!(plan.is_crashed(3));
/// assert!(!plan.is_crashed(0));
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    crashed: BTreeSet<ProcId>,
    drop_p: f64,
    duplicate_p: f64,
    rng: ChaCha12Rng,
}

impl FaultPlan {
    /// A fault plan with no faults and the given randomness seed.
    pub fn new(seed: u64) -> Self {
        Self {
            crashed: BTreeSet::new(),
            drop_p: 0.0,
            duplicate_p: 0.0,
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Marks `node` as crashed from the start: it never starts, never
    /// sends, never receives.
    pub fn crash(mut self, node: ProcId) -> Self {
        self.crashed.insert(node);
        self
    }

    /// Each delivery is independently dropped with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.drop_p = p;
        self
    }

    /// Each delivery is independently duplicated with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.duplicate_p = p;
        self
    }

    /// Whether `node` is crashed.
    pub fn is_crashed(&self, node: ProcId) -> bool {
        self.crashed.contains(&node)
    }

    /// The crashed node set.
    pub fn crashed_nodes(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.crashed.iter().copied()
    }

    /// Decides the fate of one delivery: `0` = dropped, `1` = delivered,
    /// `2` = delivered twice.
    pub(crate) fn delivery_copies(&mut self) -> u8 {
        if self.drop_p > 0.0 && self.rng.gen::<f64>() < self.drop_p {
            0
        } else if self.duplicate_p > 0.0 && self.rng.gen::<f64>() < self.duplicate_p {
            2
        } else {
            1
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_faultless() {
        let mut p = FaultPlan::default();
        assert!(!p.is_crashed(0));
        for _ in 0..100 {
            assert_eq!(p.delivery_copies(), 1);
        }
    }

    #[test]
    fn crash_set_is_queryable() {
        let p = FaultPlan::new(1).crash(2).crash(5);
        assert_eq!(p.crashed_nodes().collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut p = FaultPlan::new(1).drop_probability(1.0);
        for _ in 0..50 {
            assert_eq!(p.delivery_copies(), 0);
        }
    }

    #[test]
    fn duplicate_probability_one_duplicates_everything() {
        let mut p = FaultPlan::new(1).duplicate_probability(1.0);
        for _ in 0..50 {
            assert_eq!(p.delivery_copies(), 2);
        }
    }

    #[test]
    fn same_seed_same_fates() {
        let mut a = FaultPlan::new(9).drop_probability(0.5);
        let mut b = FaultPlan::new(9).drop_probability(0.5);
        let fa: Vec<u8> = (0..200).map(|_| a.delivery_copies()).collect();
        let fb: Vec<u8> = (0..200).map(|_| b.delivery_copies()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_panics() {
        let _ = FaultPlan::new(0).drop_probability(1.5);
    }
}
