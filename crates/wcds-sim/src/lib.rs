//! Deterministic discrete-event simulator for distributed message-passing
//! protocols on (unit-disk) graph topologies.
//!
//! The paper's algorithms are *distributed*: each node runs the same local
//! rules, knows only its 1-hop neighborhood, and communicates by radio
//! broadcast. This crate provides that execution model:
//!
//! * [`Protocol`] — a per-node state machine (`on_start`, `on_message`,
//!   `on_timer`);
//! * [`Context`] — the node's view of the world: its id, its neighbor ids,
//!   and the send primitives. **Positions are never exposed** — the
//!   spanners built on top are "position-less" by construction;
//! * [`Simulator`] — runs one protocol instance per node under a
//!   [`Schedule`]: lock-step synchronous rounds (the model behind the
//!   paper's `O(n)` time bounds) or asynchronous per-message delivery with
//!   seeded pseudo-random delays;
//! * [`SimReport`] / [`MessageStats`] — per-node and per-kind transmission
//!   counts (one *local broadcast* = one charged message, matching the
//!   paper's accounting), plus the virtual completion time;
//! * [`FaultPlan`] — crash/drop/duplicate fault injection for robustness
//!   tests;
//! * [`interleave`] — a separate, exhaustive bounded-interleaving
//!   explorer for small *shared-memory* step machines (used by the
//!   `wcds-analyze` race checker to model-check the service store's
//!   rebuild protocol).
//!
//! Runs are deterministic: same topology + same seed + same schedule ⇒
//! identical traces, bit for bit.
//!
//! # Examples
//!
//! A one-shot flooding protocol:
//!
//! ```
//! use wcds_graph::generators;
//! use wcds_sim::{Context, Protocol, Schedule, Simulator};
//!
//! #[derive(Debug, Default)]
//! struct Flood {
//!     informed: bool,
//! }
//!
//! impl Protocol for Flood {
//!     type Message = ();
//!
//!     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
//!         if ctx.id() == 0 {
//!             self.informed = true;
//!             ctx.broadcast(());
//!         }
//!     }
//!
//!     fn on_message(&mut self, _from: usize, _msg: (), ctx: &mut Context<'_, ()>) {
//!         if !self.informed {
//!             self.informed = true;
//!             ctx.broadcast(());
//!         }
//!     }
//! }
//!
//! let g = generators::path(10);
//! let mut sim = Simulator::new(&g, |_| Flood::default());
//! let report = sim.run(Schedule::synchronous()).unwrap();
//! assert!(sim.nodes().iter().all(|n| n.informed));
//! assert!(report.messages.total() == 10);
//! ```

mod context;
mod fault;
pub mod interleave;
mod scheduler;
mod stats;
mod trace;

pub use context::Context;
pub use fault::FaultPlan;
pub use scheduler::{Schedule, SimError, Simulator};
pub use stats::{MessageStats, SimReport};
pub use trace::{TraceEvent, TraceLog};

/// Identifier of a process (node) in a simulation.
///
/// Equals the [`wcds_graph::NodeId`] of the node in the topology graph.
pub type ProcId = usize;

/// Virtual time. Synchronous runs count rounds; asynchronous runs count
/// abstract delay units.
pub type Time = u64;

/// A per-node distributed protocol.
///
/// One value of the implementing type is instantiated per node; the
/// simulator drives it through the callbacks. A node may only communicate
/// through the [`Context`] it is handed — the type system keeps protocols
/// honest about what a radio node can know.
///
/// Quiescence (no messages or timers in flight, after every node has
/// started) ends the run; protocols do not signal termination explicitly,
/// mirroring how the paper's algorithms simply stop sending.
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Message: Clone + std::fmt::Debug;

    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>);

    /// Called for each delivered message.
    fn on_message(&mut self, from: ProcId, msg: Self::Message, ctx: &mut Context<'_, Self::Message>);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Message>) {}

    /// A short label for a message, used for per-kind statistics
    /// (e.g. `"GRAY"`, `"BLACK"`). Defaults to a single bucket.
    fn message_kind(_msg: &Self::Message) -> &'static str {
        "msg"
    }

    /// The abstract payload size of a message (e.g. list entries), used
    /// for bandwidth accounting. The paper's complexity results count
    /// *messages*; payload accounting exposes that some of Algorithm
    /// II's messages carry `O(Δ)`-bounded lists. Defaults to 1.
    fn message_payload(_msg: &Self::Message) -> u64 {
        1
    }
}
