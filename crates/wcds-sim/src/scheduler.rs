use crate::context::{Context, Outgoing};
use crate::{FaultPlan, MessageStats, ProcId, Protocol, SimReport, Time, TraceEvent, TraceLog};
use wcds_rng::{ChaCha12Rng, Rng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use wcds_graph::Graph;

/// An inbound event for one node: `Some((from, msg))` is a delivery,
/// `None` a timer firing.
type Inbound<M> = (ProcId, Option<(ProcId, M)>);

/// An [`Inbound`] event scheduled for a future virtual time.
type TimedInbound<M> = (Time, ProcId, Option<(ProcId, M)>);

/// Per-step invariant inspector: receives the virtual time and every
/// node's state, returns an error message to abort the run.
type Inspector<'a, P> = &'a mut dyn FnMut(Time, &[P]) -> Result<(), String>;

/// How events are ordered in virtual time.
#[derive(Debug, Clone)]
enum ScheduleKind {
    /// Lock-step rounds: a message sent in round `r` is delivered in
    /// round `r + 1`; all deliveries of a round happen "simultaneously"
    /// (processed in deterministic id order). This is the model behind
    /// the paper's `O(n)` time-complexity claims.
    Synchronous,
    /// Per-message delivery with seeded pseudo-random delays in
    /// `1..=max_delay`. Exercises protocols without the lock-step crutch.
    Asynchronous { seed: u64, max_delay: Time },
}

/// Execution schedule plus run options.
///
/// # Examples
///
/// ```
/// use wcds_sim::{FaultPlan, Schedule};
///
/// let s = Schedule::asynchronous(42)
///     .with_fault_plan(FaultPlan::new(1).crash(3))
///     .with_trace(1000);
/// let _ = s;
/// ```
#[derive(Debug, Clone)]
pub struct Schedule {
    kind: ScheduleKind,
    fault: FaultPlan,
    max_events: u64,
    trace_capacity: usize,
    sync_descending: bool,
}

impl Schedule {
    /// The synchronous, lock-step-rounds schedule.
    pub fn synchronous() -> Self {
        Self {
            kind: ScheduleKind::Synchronous,
            fault: FaultPlan::default(),
            max_events: 50_000_000,
            trace_capacity: 0,
            sync_descending: false,
        }
    }

    /// An asynchronous schedule with per-message delays drawn
    /// deterministically from `seed` (uniform in `1..=8`).
    pub fn asynchronous(seed: u64) -> Self {
        Self {
            kind: ScheduleKind::Asynchronous { seed, max_delay: 8 },
            fault: FaultPlan::default(),
            max_events: 50_000_000,
            trace_capacity: 0,
            sync_descending: false,
        }
    }

    /// Overrides the maximum per-message delay of an asynchronous
    /// schedule (no effect on a synchronous one).
    ///
    /// # Panics
    ///
    /// Panics if `max_delay` is zero.
    pub fn with_max_delay(mut self, max_delay: Time) -> Self {
        assert!(max_delay >= 1, "max_delay must be at least 1");
        if let ScheduleKind::Asynchronous { max_delay: d, .. } = &mut self.kind {
            *d = max_delay;
        }
        self
    }

    /// Attaches a fault plan.
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Caps the number of executed events (defence against non-quiescent
    /// protocols). Default: 50 million.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Enables event tracing, retaining up to `capacity` events in the
    /// report.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Processes each synchronous round's deliveries in **descending**
    /// recipient/sender order instead of ascending — an adversarial
    /// ordering for shaking out hidden order dependencies in protocols
    /// that should be confluent. No effect on asynchronous schedules.
    pub fn with_descending_order(mut self) -> Self {
        self.sync_descending = true;
        self
    }
}

/// A simulation failed to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The protocol was still generating events after the configured
    /// event budget; it is likely non-quiescent (livelocked).
    EventBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// An inspector attached via [`Simulator::run_inspected`] rejected
    /// an intermediate state.
    InvariantViolated {
        /// Virtual time at which the invariant failed.
        time: Time,
        /// The inspector's explanation.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventBudgetExhausted { budget } => {
                write!(f, "protocol still active after {budget} events; likely non-quiescent")
            }
            SimError::InvariantViolated { time, message } => {
                write!(f, "invariant violated at time {time}: {message}")
            }
        }
    }
}

impl Error for SimError {}

/// A pending delivery or timer.
#[derive(Debug)]
enum PendingEvent<M> {
    Deliver { from: ProcId, to: ProcId, msg: M },
    Timer { node: ProcId },
}

/// Runs one [`Protocol`] instance per node of a topology graph.
///
/// The simulator owns the per-node protocol states; inspect them with
/// [`Simulator::nodes`] / [`Simulator::node`] after a run to extract the
/// protocol's output.
#[derive(Debug)]
pub struct Simulator<P: Protocol> {
    adj: Vec<Vec<ProcId>>,
    nodes: Vec<P>,
}

impl<P: Protocol> Simulator<P> {
    /// Instantiates the protocol on every node of `graph`.
    ///
    /// The factory receives each node id; use it to inject per-node
    /// configuration (e.g. protocol-level IDs distinct from indices).
    pub fn new<F>(graph: &Graph, mut factory: F) -> Self
    where
        F: FnMut(ProcId) -> P,
    {
        let adj: Vec<Vec<ProcId>> = graph.nodes().map(|u| graph.adj(u).collect()).collect();
        let nodes = graph.nodes().map(&mut factory).collect();
        Self { adj, nodes }
    }

    /// The per-node protocol states.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The protocol state of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn node(&self, u: ProcId) -> &P {
        &self.nodes[u]
    }

    /// Mutable access to the protocol state of node `u`.
    ///
    /// Intended for harnesses that drive multi-phase protocols: between
    /// `run` calls they may flip phase flags or inject work. Mutating
    /// state *during* a run is impossible (the simulator holds the
    /// borrow).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn node_mut(&mut self, u: ProcId) -> &mut P {
        &mut self.nodes[u]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Replaces the topology between runs (node motion): the next `run`
    /// sees the new adjacency while every node keeps its protocol
    /// state. This is how maintenance protocols are driven — change the
    /// topology, re-run, and let nodes react to what their
    /// [`Context::neighbors`] now reports.
    ///
    /// # Panics
    ///
    /// Panics if the node count differs from the original topology's.
    pub fn set_topology(&mut self, graph: &Graph) {
        assert_eq!(
            graph.node_count(),
            self.nodes.len(),
            "topology change must preserve the node count"
        );
        self.adj = graph.nodes().map(|u| graph.adj(u).collect()).collect();
    }

    /// Executes the protocol to quiescence under `schedule`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] if the protocol is
    /// still producing events past the schedule's event budget.
    pub fn run(&mut self, schedule: Schedule) -> Result<SimReport, SimError> {
        self.run_inspected(schedule, |_, _| Ok(()))
    }

    /// Like [`Simulator::run`], but calls `inspector` on every
    /// intermediate global state — after each round under the
    /// synchronous schedule, after each delivered event under the
    /// asynchronous one. Returning `Err` aborts the run.
    ///
    /// This is how tests check *safety* invariants (e.g. "no two
    /// adjacent nodes are ever both MIS dominators") rather than only
    /// the final state.
    ///
    /// # Errors
    ///
    /// [`SimError::EventBudgetExhausted`] as for `run`, or
    /// [`SimError::InvariantViolated`] when the inspector rejects.
    pub fn run_inspected<F>(
        &mut self,
        schedule: Schedule,
        mut inspector: F,
    ) -> Result<SimReport, SimError>
    where
        F: FnMut(Time, &[P]) -> Result<(), String>,
    {
        match schedule.kind {
            ScheduleKind::Synchronous => self.run_synchronous(schedule, &mut inspector),
            ScheduleKind::Asynchronous { seed, max_delay } => {
                self.run_asynchronous(schedule, seed, max_delay, &mut inspector)
            }
        }
    }

    fn run_synchronous(
        &mut self,
        schedule: Schedule,
        inspector: Inspector<'_, P>,
    ) -> Result<SimReport, SimError> {
        let Schedule { mut fault, max_events, trace_capacity, sync_descending, .. } = schedule;
        let mut stats = MessageStats::new(self.nodes.len());
        let mut trace = if trace_capacity > 0 {
            TraceLog::with_capacity(trace_capacity)
        } else {
            TraceLog::disabled()
        };
        // (fire_round, node, from, payload) — timers carry no payload
        let mut current: Vec<Inbound<P::Message>> = Vec::new();
        let mut future: Vec<TimedInbound<P::Message>> = Vec::new();
        let mut events: u64 = 0;

        // Round 0: starts.
        for node in 0..self.nodes.len() {
            if fault.is_crashed(node) {
                continue;
            }
            trace.push(TraceEvent::Start { node, time: 0 });
            events += 1;
            let mut pending = Vec::new();
            self.dispatch_sync(node, 0, &mut stats, &mut trace, &mut pending, StartOrEvent::Start);
            future.extend(pending);
        }
        inspector(0, &self.nodes)
            .map_err(|message| SimError::InvariantViolated { time: 0, message })?;

        let mut round: Time = 0;
        while !future.is_empty() {
            round += 1;
            // pull everything due this round, in deterministic order
            let mut due: Vec<Inbound<P::Message>> = Vec::new();
            future.retain(|(t, node, payload)| {
                if *t == round {
                    due.push((*node, payload.clone()));
                    false
                } else {
                    true
                }
            });
            // messages before timers; then by (recipient, sender) —
            // ascending normally, descending under the adversarial order
            due.sort_by_key(|(node, payload)| {
                (payload.is_none(), *node, payload.as_ref().map(|(from, _)| *from))
            });
            if sync_descending {
                // keep messages-before-timers, flip the id order
                due.sort_by_key(|(node, payload)| {
                    (
                        payload.is_none(),
                        std::cmp::Reverse(*node),
                        payload.as_ref().map(|(from, _)| std::cmp::Reverse(*from)),
                    )
                });
            }
            current.clear();
            current.extend(due);
            for (node, payload) in current.drain(..) {
                if fault.is_crashed(node) {
                    continue;
                }
                events += 1;
                if events > max_events {
                    return Err(SimError::EventBudgetExhausted { budget: max_events });
                }
                match payload {
                    Some((from, msg)) => {
                        if fault.is_crashed(from) {
                            continue;
                        }
                        let copies = fault.delivery_copies();
                        if copies == 0 {
                            trace.push(TraceEvent::Drop { from, to: node, time: round });
                            continue;
                        }
                        for _ in 0..copies {
                            stats.record_delivery();
                            trace.push(TraceEvent::Deliver {
                                from,
                                to: node,
                                kind: P::message_kind(&msg),
                                time: round,
                            });
                            let mut pending = Vec::new();
                            self.dispatch_sync(
                                node,
                                round,
                                &mut stats,
                                &mut trace,
                                &mut pending,
                                StartOrEvent::Message(from, msg.clone()),
                            );
                            future.extend(pending);
                        }
                    }
                    None => {
                        trace.push(TraceEvent::Timer { node, time: round });
                        let mut pending = Vec::new();
                        self.dispatch_sync(
                            node,
                            round,
                            &mut stats,
                            &mut trace,
                            &mut pending,
                            StartOrEvent::Timer,
                        );
                        future.extend(pending);
                    }
                }
            }
            inspector(round, &self.nodes)
                .map_err(|message| SimError::InvariantViolated { time: round, message })?;
        }
        Ok(SimReport { rounds: round, time: round, messages: stats, events, trace })
    }

    /// Synchronous dispatch: buffered sends land in the *next* round,
    /// timers at `now + delay`.
    fn dispatch_sync(
        &mut self,
        node: ProcId,
        now: Time,
        stats: &mut MessageStats,
        trace: &mut TraceLog,
        pending: &mut Vec<TimedInbound<P::Message>>,
        what: StartOrEvent<P::Message>,
    ) {
        let mut ctx = Context::new(node, &self.adj[node], now);
        match what {
            StartOrEvent::Start => self.nodes[node].on_start(&mut ctx),
            StartOrEvent::Message(from, msg) => self.nodes[node].on_message(from, msg, &mut ctx),
            StartOrEvent::Timer => self.nodes[node].on_timer(&mut ctx),
        }
        let Context { outgoing, timers, .. } = ctx;
        for out in outgoing {
            match out {
                Outgoing::Broadcast(msg) => {
                    let kind = P::message_kind(&msg);
                    stats.record_send(node, kind, P::message_payload(&msg));
                    trace.push(TraceEvent::Send { from: node, kind, time: now });
                    for &nb in &self.adj[node] {
                        pending.push((now + 1, nb, Some((node, msg.clone()))));
                    }
                }
                Outgoing::Unicast(to, msg) => {
                    let kind = P::message_kind(&msg);
                    stats.record_send(node, kind, P::message_payload(&msg));
                    trace.push(TraceEvent::Send { from: node, kind, time: now });
                    pending.push((now + 1, to, Some((node, msg))));
                }
            }
        }
        for fire_at in timers {
            pending.push((fire_at, node, None));
        }
    }

    fn run_asynchronous(
        &mut self,
        schedule: Schedule,
        seed: u64,
        max_delay: Time,
        inspector: Inspector<'_, P>,
    ) -> Result<SimReport, SimError> {
        let Schedule { mut fault, max_events, trace_capacity, .. } = schedule;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut stats = MessageStats::new(self.nodes.len());
        let mut trace = if trace_capacity > 0 {
            TraceLog::with_capacity(trace_capacity)
        } else {
            TraceLog::disabled()
        };
        // min-heap on (time, seq); seq makes ordering total and deterministic
        let mut heap: BinaryHeap<Reverse<(Time, u64, usize)>> = BinaryHeap::new();
        let mut slab: Vec<Option<PendingEvent<P::Message>>> = Vec::new();
        let mut seq: u64 = 0;
        let mut events: u64 = 0;
        let mut now: Time = 0;

        let push =
            |heap: &mut BinaryHeap<Reverse<(Time, u64, usize)>>,
             slab: &mut Vec<Option<PendingEvent<P::Message>>>,
             seq: &mut u64,
             at: Time,
             ev: PendingEvent<P::Message>| {
                slab.push(Some(ev));
                heap.push(Reverse((at, *seq, slab.len() - 1)));
                *seq += 1;
            };

        for node in 0..self.nodes.len() {
            if fault.is_crashed(node) {
                continue;
            }
            trace.push(TraceEvent::Start { node, time: 0 });
            events += 1;
            let outs = self.collect_dispatch(node, 0, &mut stats, &mut trace, StartOrEvent::Start);
            for (fire_at, ev) in outs {
                let at = match &ev {
                    PendingEvent::Deliver { .. } => rng.gen_range(1..=max_delay),
                    PendingEvent::Timer { .. } => fire_at,
                };
                push(&mut heap, &mut slab, &mut seq, at, ev);
            }
        }

        inspector(0, &self.nodes)
            .map_err(|message| SimError::InvariantViolated { time: 0, message })?;
        while let Some(Reverse((t, _, slot))) = heap.pop() {
            let Some(ev) = slab[slot].take() else {
                debug_assert!(false, "event slot {slot} popped twice");
                continue;
            };
            now = t;
            events += 1;
            if events > max_events {
                return Err(SimError::EventBudgetExhausted { budget: max_events });
            }
            match ev {
                PendingEvent::Deliver { from, to, msg } => {
                    if fault.is_crashed(to) || fault.is_crashed(from) {
                        continue;
                    }
                    let copies = fault.delivery_copies();
                    if copies == 0 {
                        trace.push(TraceEvent::Drop { from, to, time: now });
                        continue;
                    }
                    for _ in 0..copies {
                        stats.record_delivery();
                        trace.push(TraceEvent::Deliver {
                            from,
                            to,
                            kind: P::message_kind(&msg),
                            time: now,
                        });
                        let outs = self.collect_dispatch(
                            to,
                            now,
                            &mut stats,
                            &mut trace,
                            StartOrEvent::Message(from, msg.clone()),
                        );
                        for (fire_at, ev) in outs {
                            let at = match &ev {
                                PendingEvent::Deliver { .. } => now + rng.gen_range(1..=max_delay),
                                PendingEvent::Timer { .. } => fire_at,
                            };
                            push(&mut heap, &mut slab, &mut seq, at, ev);
                        }
                    }
                }
                PendingEvent::Timer { node } => {
                    if fault.is_crashed(node) {
                        continue;
                    }
                    trace.push(TraceEvent::Timer { node, time: now });
                    let outs =
                        self.collect_dispatch(node, now, &mut stats, &mut trace, StartOrEvent::Timer);
                    for (fire_at, ev) in outs {
                        let at = match &ev {
                            PendingEvent::Deliver { .. } => now + rng.gen_range(1..=max_delay),
                            PendingEvent::Timer { .. } => fire_at,
                        };
                        push(&mut heap, &mut slab, &mut seq, at, ev);
                    }
                }
            }
            inspector(now, &self.nodes)
                .map_err(|message| SimError::InvariantViolated { time: now, message })?;
        }
        Ok(SimReport { rounds: 0, time: now, messages: stats, events, trace })
    }

    /// Runs one callback and returns its produced events with their
    /// *requested* fire instants (deliveries get a placeholder `0`;
    /// the caller assigns delays).
    fn collect_dispatch(
        &mut self,
        node: ProcId,
        now: Time,
        stats: &mut MessageStats,
        trace: &mut TraceLog,
        what: StartOrEvent<P::Message>,
    ) -> Vec<(Time, PendingEvent<P::Message>)> {
        let mut ctx = Context::new(node, &self.adj[node], now);
        match what {
            StartOrEvent::Start => self.nodes[node].on_start(&mut ctx),
            StartOrEvent::Message(from, msg) => self.nodes[node].on_message(from, msg, &mut ctx),
            StartOrEvent::Timer => self.nodes[node].on_timer(&mut ctx),
        }
        let Context { outgoing, timers, .. } = ctx;
        let mut out = Vec::new();
        for o in outgoing {
            match o {
                Outgoing::Broadcast(msg) => {
                    let kind = P::message_kind(&msg);
                    stats.record_send(node, kind, P::message_payload(&msg));
                    trace.push(TraceEvent::Send { from: node, kind, time: now });
                    for &nb in &self.adj[node] {
                        out.push((0, PendingEvent::Deliver { from: node, to: nb, msg: msg.clone() }));
                    }
                }
                Outgoing::Unicast(to, msg) => {
                    let kind = P::message_kind(&msg);
                    stats.record_send(node, kind, P::message_payload(&msg));
                    trace.push(TraceEvent::Send { from: node, kind, time: now });
                    out.push((0, PendingEvent::Deliver { from: node, to, msg }));
                }
            }
        }
        for fire_at in timers {
            out.push((fire_at, PendingEvent::Timer { node }));
        }
        out
    }
}

/// Which callback a dispatch runs.
enum StartOrEvent<M> {
    Start,
    Message(ProcId, M),
    Timer,
}
