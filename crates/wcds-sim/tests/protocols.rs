//! End-to-end simulator tests with small reference protocols.

use wcds_graph::{generators, Graph};
use wcds_sim::{Context, FaultPlan, Protocol, Schedule, SimError, Simulator};

/// Flooding: node 0 injects a token; everyone forwards it once.
#[derive(Debug, Default)]
struct Flood {
    informed: bool,
}

impl Protocol for Flood {
    type Message = ();

    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        if ctx.id() == 0 {
            self.informed = true;
            ctx.broadcast(());
        }
    }

    fn on_message(&mut self, _from: usize, _msg: (), ctx: &mut Context<'_, ()>) {
        if !self.informed {
            self.informed = true;
            ctx.broadcast(());
        }
    }

    fn message_kind(_msg: &()) -> &'static str {
        "TOKEN"
    }
}

/// Each node learns the minimum id in the network by gossiping.
#[derive(Debug)]
struct MinGossip {
    min_seen: usize,
}

impl Protocol for MinGossip {
    type Message = usize;

    fn on_start(&mut self, ctx: &mut Context<'_, usize>) {
        ctx.broadcast(self.min_seen);
    }

    fn on_message(&mut self, _from: usize, msg: usize, ctx: &mut Context<'_, usize>) {
        if msg < self.min_seen {
            self.min_seen = msg;
            ctx.broadcast(msg);
        }
    }
}

/// A protocol that never quiesces: two nodes ping-pong forever.
#[derive(Debug, Default)]
struct PingPong;

impl Protocol for PingPong {
    type Message = u8;

    fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
        if ctx.id() == 0 {
            ctx.broadcast(0);
        }
    }

    fn on_message(&mut self, _from: usize, msg: u8, ctx: &mut Context<'_, u8>) {
        ctx.broadcast(msg.wrapping_add(1));
    }
}

/// Counts timer firings; re-arms twice.
#[derive(Debug, Default)]
struct TimerProto {
    fired: u32,
}

impl Protocol for TimerProto {
    type Message = ();

    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        ctx.set_timer(3);
    }

    fn on_message(&mut self, _from: usize, _msg: (), _ctx: &mut Context<'_, ()>) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, ()>) {
        self.fired += 1;
        if self.fired < 3 {
            ctx.set_timer(2);
        }
    }
}

#[test]
fn flood_reaches_every_node_synchronously() {
    let g = generators::connected_gnp(60, 0.06, 5);
    let mut sim = Simulator::new(&g, |_| Flood::default());
    let report = sim.run(Schedule::synchronous()).unwrap();
    assert!(sim.nodes().iter().all(|n| n.informed));
    // exactly one broadcast per node
    assert_eq!(report.messages.total(), 60);
    assert_eq!(report.messages.of_kind("TOKEN"), 60);
    assert_eq!(report.messages.max_per_node(), 1);
}

#[test]
fn flood_reaches_every_node_asynchronously() {
    let g = generators::connected_gnp(60, 0.06, 5);
    for seed in 0..5 {
        let mut sim = Simulator::new(&g, |_| Flood::default());
        let report = sim.run(Schedule::asynchronous(seed)).unwrap();
        assert!(sim.nodes().iter().all(|n| n.informed), "seed {seed}");
        assert_eq!(report.messages.total(), 60);
        assert_eq!(report.rounds, 0);
        assert!(report.time > 0);
    }
}

#[test]
fn flood_round_count_tracks_eccentricity_plus_one() {
    // path: node 0's token needs n-1 relay rounds; one more round drains
    // the final (redundant) deliveries.
    let g = generators::path(12);
    let mut sim = Simulator::new(&g, |_| Flood::default());
    let report = sim.run(Schedule::synchronous()).unwrap();
    assert_eq!(report.rounds, 12);
}

#[test]
fn min_gossip_converges_to_global_min() {
    let g = generators::connected_gnp(40, 0.08, 11);
    // protocol-level ids are a reversed permutation of node indices
    let mut sim = Simulator::new(&g, |i| MinGossip { min_seen: 1000 - i });
    sim.run(Schedule::synchronous()).unwrap();
    assert!(sim.nodes().iter().all(|n| n.min_seen == 1000 - 39));
}

#[test]
fn min_gossip_converges_async_any_seed() {
    let g = generators::connected_gnp(30, 0.1, 3);
    for seed in 0..8 {
        let mut sim = Simulator::new(&g, |i| MinGossip { min_seen: i });
        sim.run(Schedule::asynchronous(seed).with_max_delay(5)).unwrap();
        assert!(sim.nodes().iter().all(|n| n.min_seen == 0), "seed {seed}");
    }
}

#[test]
fn async_runs_are_deterministic_per_seed() {
    let g = generators::connected_gnp(25, 0.12, 7);
    let run = |seed| {
        let mut sim = Simulator::new(&g, |i| MinGossip { min_seen: i });
        let r = sim.run(Schedule::asynchronous(seed)).unwrap();
        (r.time, r.messages.total(), r.events)
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn event_budget_catches_livelock() {
    let g = generators::path(2);
    let mut sim = Simulator::new(&g, |_| PingPong);
    let err = sim.run(Schedule::synchronous().with_max_events(1_000)).unwrap_err();
    assert_eq!(err, SimError::EventBudgetExhausted { budget: 1_000 });
    let mut sim = Simulator::new(&g, |_| PingPong);
    let err = sim.run(Schedule::asynchronous(1).with_max_events(1_000)).unwrap_err();
    assert!(matches!(err, SimError::EventBudgetExhausted { .. }));
}

#[test]
fn crashed_node_partitions_flood() {
    // path 0-1-2-3-4 with node 2 crashed: 3 and 4 never hear the token
    let g = generators::path(5);
    let mut sim = Simulator::new(&g, |_| Flood::default());
    sim.run(Schedule::synchronous().with_fault_plan(FaultPlan::new(0).crash(2))).unwrap();
    assert!(sim.node(0).informed && sim.node(1).informed);
    assert!(!sim.node(2).informed && !sim.node(3).informed && !sim.node(4).informed);
}

#[test]
fn dropping_all_messages_stops_flood_at_source() {
    let g = generators::path(4);
    let mut sim = Simulator::new(&g, |_| Flood::default());
    let plan = FaultPlan::new(1).drop_probability(1.0);
    let report = sim.run(Schedule::synchronous().with_fault_plan(plan)).unwrap();
    assert!(sim.node(0).informed);
    assert!(!sim.node(1).informed);
    assert_eq!(report.messages.total(), 1);
}

#[test]
fn duplicates_do_not_break_idempotent_flood() {
    let g = generators::connected_gnp(30, 0.1, 2);
    let plan = FaultPlan::new(3).duplicate_probability(0.5);
    let mut sim = Simulator::new(&g, |_| Flood::default());
    let report = sim.run(Schedule::synchronous().with_fault_plan(plan)).unwrap();
    assert!(sim.nodes().iter().all(|n| n.informed));
    assert_eq!(report.messages.total(), 30);
    assert!(report.messages.deliveries() > 0);
}

#[test]
fn timers_fire_in_both_schedules() {
    let g = Graph::empty(3);
    let mut sim = Simulator::new(&g, |_| TimerProto::default());
    let report = sim.run(Schedule::synchronous()).unwrap();
    assert!(sim.nodes().iter().all(|n| n.fired == 3));
    assert_eq!(report.time, 7); // 3 + 2 + 2

    let mut sim = Simulator::new(&g, |_| TimerProto::default());
    let report = sim.run(Schedule::asynchronous(4)).unwrap();
    assert!(sim.nodes().iter().all(|n| n.fired == 3));
    assert_eq!(report.time, 7); // timers are delay-exact in async mode too
}

#[test]
fn trace_records_protocol_activity() {
    let g = generators::path(3);
    let mut sim = Simulator::new(&g, |_| Flood::default());
    let report = sim.run(Schedule::synchronous().with_trace(100)).unwrap();
    let rendered = format!("{}", report.trace);
    assert!(rendered.contains("start"));
    assert!(rendered.contains("send 0 TOKEN"));
    assert!(rendered.contains("deliver 0->1"));
}

#[test]
fn empty_graph_simulation_is_trivial() {
    let g = Graph::empty(0);
    let mut sim = Simulator::new(&g, |_| Flood::default());
    let report = sim.run(Schedule::synchronous()).unwrap();
    assert_eq!(report.messages.total(), 0);
    assert_eq!(report.rounds, 0);
}

#[test]
fn isolated_nodes_start_but_cannot_send() {
    let g = Graph::empty(4);
    let mut sim = Simulator::new(&g, |_| Flood::default());
    let report = sim.run(Schedule::synchronous()).unwrap();
    // node 0 "broadcasts" into the void: charged once, delivered nowhere
    assert_eq!(report.messages.total(), 1);
    assert_eq!(report.messages.deliveries(), 0);
    assert!(!sim.node(1).informed);
}

// ---------------------------------------------------------------------
// failure storms (ISSUE 7): targeted and region kills driving a
// flood-under-storm scenario

/// The paper's lex-first greedy MIS, inlined so the simulator crate
/// stays independent of `wcds-core`: these are the clusterheads a
/// dominator-targeted storm goes after.
fn lex_first_mis(g: &Graph) -> Vec<usize> {
    let mut covered = vec![false; g.node_count()];
    let mut mis = Vec::new();
    for u in 0..g.node_count() {
        if !covered[u] {
            mis.push(u);
            covered[u] = true;
            for v in g.adj(u) {
                covered[v] = true;
            }
        }
    }
    mis
}

#[test]
fn dominator_targeted_storm_replays_deterministically() {
    let g = generators::connected_gnp(60, 0.08, 4);
    let dominators = lex_first_mis(&g);
    let run = |salt: u64| {
        let plan = FaultPlan::new(11).crash_fraction_of(&dominators, 0.5, salt);
        let killed: Vec<usize> = plan.crashed_nodes().collect();
        let mut sim = Simulator::new(&g, |_| Flood::default());
        let report = sim.run(Schedule::synchronous().with_fault_plan(plan)).unwrap();
        let informed: Vec<bool> = sim.nodes().iter().map(|n| n.informed).collect();
        (killed, informed, report.messages.total())
    };
    let (k1, i1, m1) = run(3);
    let (k2, i2, m2) = run(3);
    assert_eq!((&k1, &i1, m1), (&k2, &i2, m2), "storm replay diverged");
    assert!(!k1.is_empty() && k1.iter().all(|k| dominators.contains(k)));
    // crashed dominators never wake up; the flood is confined to the
    // survivor component of the source
    for &k in &k1 {
        assert!(!i1[k], "crashed node {k} got informed");
    }
    // a different salt is a different storm
    let (k3, _, _) = run(4);
    assert_ne!(k1, k3);
}

#[test]
fn region_kill_storm_partitions_a_grid_flood() {
    // 6×6 grid, positions (col, row); killing the x ∈ [2.5, 3.5] strip
    // removes column 3 and cuts the flood off from columns 4..6
    let (rows, cols) = (6, 6);
    let g = generators::grid(rows, cols);
    let positions: Vec<(f64, f64)> =
        (0..rows * cols).map(|i| ((i % cols) as f64, (i / cols) as f64)).collect();
    let plan = FaultPlan::new(5).crash_region(&positions, (2.5, -1.0), (3.5, 7.0));
    assert_eq!(plan.crashed_nodes().count(), rows, "one column dies");
    let mut sim = Simulator::new(&g, |_| Flood::default());
    sim.run(Schedule::synchronous().with_fault_plan(plan)).unwrap();
    for i in 0..rows * cols {
        let col = i % cols;
        assert_eq!(
            sim.node(i).informed,
            col < 3,
            "node {i} (column {col}) on the wrong side of the storm"
        );
    }
}
