//! B5: analysis-side microbenchmarks — all-pairs dilation measurement
//! and the subset-distance minimax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcds_bench::util::{connected_uniform_udg, side_for_avg_degree};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::dilation::DilationReport;
use wcds_core::mis::{greedy_mis, RankingMode};
use wcds_core::properties;
use wcds_core::WcdsConstruction;

fn bench_dilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dilation_measure");
    group.sample_size(10);
    for n in [100usize, 200] {
        let udg = connected_uniform_udg(n, side_for_avg_degree(n, 12.0), 7);
        let result = AlgorithmTwo::new().construct(udg.graph());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| DilationReport::measure(udg.graph(), &result.spanner, udg.points()));
        });
    }
    group.finish();
}

fn bench_subset_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_distance_minimax");
    for n in [200usize, 800] {
        let udg = connected_uniform_udg(n, side_for_avg_degree(n, 12.0), 8);
        let mis = greedy_mis(udg.graph(), RankingMode::StaticId);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| properties::max_complementary_subset_distance(udg.graph(), &mis));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dilation, bench_subset_distance);
criterion_main!(benches);
