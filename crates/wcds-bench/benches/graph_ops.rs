//! B4: substrate microbenchmarks — BFS, Dijkstra, components, and the
//! distributed simulator's round loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcds_bench::util::{connected_uniform_udg, side_for_avg_degree};
use wcds_core::algo2;
use wcds_graph::{shortest_path, traversal};

fn bench_traversals(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_ops");
    for n in [1000usize, 4000] {
        let udg = connected_uniform_udg(n, side_for_avg_degree(n, 12.0), 5);
        let g = udg.graph();
        group.bench_with_input(BenchmarkId::new("bfs", n), &n, |b, _| {
            b.iter(|| traversal::bfs_distances(g, 0));
        });
        group.bench_with_input(BenchmarkId::new("dijkstra_geom", n), &n, |b, _| {
            b.iter(|| shortest_path::geometric_distances(g, udg.points(), 0));
        });
        group.bench_with_input(BenchmarkId::new("components", n), &n, |b, _| {
            b.iter(|| traversal::connected_components(g));
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for n in [250usize, 1000] {
        let udg = connected_uniform_udg(n, side_for_avg_degree(n, 12.0), 6);
        group.bench_with_input(BenchmarkId::new("algo2_distributed_sync", n), &n, |b, _| {
            b.iter(|| algo2::distributed::run_synchronous(udg.graph()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traversals, bench_simulator);
criterion_main!(benches);
