//! B1–B3: construction-time microbenchmarks — UDG build, MIS, the two
//! WCDS algorithms (centralized), and the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcds_baselines::GreedyWcds;
use wcds_bench::util::{connected_uniform_udg, side_for_avg_degree};
use wcds_core::algo1::AlgorithmOne;
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::mis::{greedy_mis, RankingMode};
use wcds_core::WcdsConstruction;
use wcds_geom::deploy;
use wcds_graph::UnitDiskGraph;

fn bench_udg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("udg_build");
    for n in [250usize, 1000, 4000] {
        let side = side_for_avg_degree(n, 12.0);
        let pts = deploy::uniform(n, side, side, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| UnitDiskGraph::build(pts.clone(), 1.0));
        });
    }
    group.finish();
}

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_mis");
    for n in [250usize, 1000, 4000] {
        let udg = connected_uniform_udg(n, side_for_avg_degree(n, 12.0), 2);
        group.bench_with_input(BenchmarkId::new("static_id", n), &n, |b, _| {
            b.iter(|| greedy_mis(udg.graph(), RankingMode::StaticId));
        });
        group.bench_with_input(BenchmarkId::new("degree_id", n), &n, |b, _| {
            b.iter(|| greedy_mis(udg.graph(), RankingMode::DegreeId));
        });
    }
    group.finish();
}

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("wcds_construction");
    for n in [250usize, 1000] {
        let udg = connected_uniform_udg(n, side_for_avg_degree(n, 12.0), 3);
        group.bench_with_input(BenchmarkId::new("algorithm_1", n), &n, |b, _| {
            b.iter(|| AlgorithmOne::new().construct(udg.graph()));
        });
        group.bench_with_input(BenchmarkId::new("algorithm_2", n), &n, |b, _| {
            b.iter(|| AlgorithmTwo::new().construct(udg.graph()));
        });
    }
    // the O(n³) greedy baseline only at a small size
    let udg = connected_uniform_udg(120, side_for_avg_degree(120, 12.0), 4);
    group.bench_function("greedy_wcds/120", |b| {
        b.iter(|| GreedyWcds::new().construct(udg.graph()));
    });
    group.finish();
}

criterion_group!(benches, bench_udg_build, bench_mis, bench_constructions);
criterion_main!(benches);
