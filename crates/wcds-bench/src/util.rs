//! Shared experiment plumbing: scales, table rendering, and workload
//! helpers.

use std::fmt;
use wcds_geom::deploy;
use wcds_graph::{traversal, UnitDiskGraph};

/// How big an experiment run should be.
///
/// `Quick` keeps every experiment under a second (used by the
/// integration tests that smoke-run the whole evaluation); `Full` is
/// the paper-scale sweep the binaries default to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for smoke tests.
    Quick,
    /// Full sweeps for the recorded evaluation.
    Full,
}

impl Scale {
    /// Parses `--quick` from a binary's argument list.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Picks between the two scale variants.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment/table title, e.g. `"T4 dilation (Theorem 11)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form annotations printed under the table (expected shape,
    /// bound checks).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note<S: Into<String>>(&mut self, s: S) -> &mut Self {
        self.notes.push(s.into());
        self
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        writeln!(f, "  {}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats an f64 with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an f64 with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Builds a **connected** random-uniform UDG with `n` nodes on a
/// `side × side` region, resampling the seed until connected.
///
/// # Panics
///
/// Panics after 200 failed attempts (density too low for
/// connectivity — pick a smaller side).
pub fn connected_uniform_udg(n: usize, side: f64, seed: u64) -> UnitDiskGraph {
    for attempt in 0..200 {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed + 1000 * attempt), 1.0);
        if traversal::is_connected(udg.graph()) {
            return udg;
        }
    }
    panic!("no connected deployment found for n = {n}, side = {side}");
}

/// The region side length giving a target average degree for `n`
/// uniform nodes with unit radius: `E[deg] ≈ n·π/side²`.
pub fn side_for_avg_degree(n: usize, avg_degree: f64) -> f64 {
    (n as f64 * std::f64::consts::PI / avg_degree).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_parts() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = format!("{t}");
        assert!(s.contains("== demo =="));
        assert!(s.contains("bb"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn connected_udg_is_connected() {
        let udg = connected_uniform_udg(60, 4.0, 9);
        assert!(traversal::is_connected(udg.graph()));
        assert_eq!(udg.node_count(), 60);
    }

    #[test]
    fn side_for_degree_formula() {
        let side = side_for_avg_degree(100, 10.0);
        assert!((side * side * 10.0 / std::f64::consts::PI - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
