//! W1 — deployment sensitivity: the constructions across deployment
//! geometries (the paper's model is "nodes in the plane"; this sweep
//! shows the guarantees are geometry-robust, not artifacts of uniform
//! squares).

use crate::util::{f2, Scale, Table};
use wcds_core::algo1::AlgorithmOne;
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::dilation::DilationReport;
use wcds_core::spanner::SpannerStats;
use wcds_core::WcdsConstruction;
use wcds_geom::{deploy, Point};
use wcds_graph::{metrics::GraphMetrics, traversal, UnitDiskGraph};

fn deployment(name: &str, n: usize, seed: u64) -> Vec<Point> {
    match name {
        "uniform square" => deploy::uniform(n, 6.5, 6.5, seed),
        "clustered" => deploy::clustered(n, 6.0, 6.0, 4, 1.1, seed),
        "jittered grid" => {
            let cols = (n as f64).sqrt().ceil() as usize;
            let mut pts = deploy::grid_jitter(cols, cols, 0.55, 0.2, seed);
            pts.truncate(n);
            pts
        }
        "L-shape" => deploy::l_shape(n, 6.5, seed),
        "corridor" => deploy::corridor(n, n as f64 / 14.0, 2.2, seed),
        other => unreachable!("unknown deployment {other}"),
    }
}

/// Runs the deployment sweep.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(90, 250);
    let trials = scale.pick(2, 8);
    let mut t = Table::new(
        "W1 · deployment sensitivity (our addition): both algorithms across geometries",
        &[
            "deployment",
            "avg deg",
            "diam",
            "|U| algo-1",
            "|U| algo-2",
            "E'/n",
            "bounds hold",
        ],
    );
    for name in ["uniform square", "clustered", "jittered grid", "L-shape", "corridor"] {
        let mut deg = 0.0;
        let mut diam = 0u32;
        let mut u1 = 0.0;
        let mut u2 = 0.0;
        let mut epn = 0.0;
        let mut bounds = true;
        let mut runs = 0;
        for seed in 0..(trials * 12) {
            if runs == trials {
                break;
            }
            let udg = UnitDiskGraph::build(deployment(name, n, seed as u64), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            runs += 1;
            let g = udg.graph();
            let m = GraphMetrics::compute(g, true);
            deg += m.avg_degree;
            diam = diam.max(m.diameter.expect("connected"));
            let r1 = AlgorithmOne::new().construct(g);
            let r2 = AlgorithmTwo::new().construct(g);
            bounds &= r1.wcds.is_valid(g) && r2.wcds.is_valid(g);
            let s2 = SpannerStats::compute(g, &r2.wcds);
            bounds &= SpannerStats::compute(g, &r1.wcds).satisfies_theorem8_bound()
                && s2.satisfies_theorem10_bound();
            let d = DilationReport::measure(g, &r2.spanner, udg.points());
            bounds &= d.satisfies_topological_bound() && d.satisfies_geometric_bound();
            u1 += r1.wcds.len() as f64;
            u2 += r2.wcds.len() as f64;
            epn += s2.edges_per_node();
        }
        if runs == 0 {
            t.row(vec![
                name.into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "no connected instance".into(),
            ]);
            continue;
        }
        let k = runs as f64;
        t.row(vec![
            name.into(),
            f2(deg / k),
            diam.to_string(),
            f2(u1 / k),
            f2(u2 / k),
            f2(epn / k),
            bounds.to_string(),
        ]);
    }
    t.note("expected: every bound holds in every geometry — the guarantees are packing");
    t.note("arguments, indifferent to region shape. Backbone size tracks covered AREA, not n:");
    t.note("clusters and thin corridors (small areas) need few dominators; spread-out squares");
    t.note("and L-shapes need more.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_in_every_geometry() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if row[6] == "no connected instance" {
                continue;
            }
            assert_eq!(row[6], "true", "bounds failed on {}", row[0]);
        }
        // at least three geometries must actually have run
        let ran = t.rows.iter().filter(|r| r[6] == "true").count();
        assert!(ran >= 3, "too few connected geometries ran");
    }
}
