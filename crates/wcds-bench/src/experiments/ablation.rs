//! A1 — ranking-mode ablation (our addition, flagged as such in
//! DESIGN.md): how the rank choice of §2.2 affects MIS size and the
//! subset-distance property that makes an MIS a WCDS for free.

use crate::util::{connected_uniform_udg, f2, side_for_avg_degree, Scale, Table};
use wcds_core::algo1::AlgorithmOne;
use wcds_core::mis::{greedy_mis, RankingMode};
use wcds_core::properties;
use wcds_graph::domination;

/// Runs the ranking ablation.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(5, 25);
    let n = scale.pick(80, 300);
    let side = side_for_avg_degree(n, 12.0);
    let mut t = Table::new(
        "A1 · ranking ablation: static ID vs (degree, id) vs level-based (§2.2)",
        &["ranking", "mean |MIS|", "worst subset dist", "always WCDS alone?", "extra msgs needed"],
    );

    let mut id_sizes = 0.0;
    let mut id_worst = 0u32;
    let mut id_wcds_always = true;
    let mut deg_sizes = 0.0;
    let mut deg_worst = 0u32;
    let mut deg_wcds_always = true;
    let mut lvl_sizes = 0.0;
    let mut lvl_worst = 0u32;
    let mut lvl_wcds_always = true;

    for seed in 0..trials {
        let udg = connected_uniform_udg(n, side, seed as u64 + 53);
        let g = udg.graph();

        let mis_id = greedy_mis(g, RankingMode::StaticId);
        id_sizes += mis_id.len() as f64;
        if mis_id.len() >= 2 {
            let d = properties::max_complementary_subset_distance(g, &mis_id)
                .expect("connected graph");
            id_worst = id_worst.max(d);
        }
        id_wcds_always &= domination::is_weakly_connected_dominating_set(g, &mis_id);

        let mis_deg = greedy_mis(g, RankingMode::DegreeId);
        deg_sizes += mis_deg.len() as f64;
        if mis_deg.len() >= 2 {
            let d = properties::max_complementary_subset_distance(g, &mis_deg)
                .expect("connected graph");
            deg_worst = deg_worst.max(d);
        }
        deg_wcds_always &= domination::is_weakly_connected_dominating_set(g, &mis_deg);

        let (_, mis_lvl) = AlgorithmOne::new().construct_detailed(g);
        lvl_sizes += mis_lvl.len() as f64;
        if mis_lvl.len() >= 2 {
            let d = properties::max_complementary_subset_distance(g, &mis_lvl)
                .expect("connected graph");
            lvl_worst = lvl_worst.max(d);
        }
        lvl_wcds_always &= domination::is_weakly_connected_dominating_set(g, &mis_lvl);
    }

    let k = trials as f64;
    t.row(vec![
        "static ID (Algorithm II phase 1)".into(),
        f2(id_sizes / k),
        id_worst.to_string(),
        id_wcds_always.to_string(),
        "bridging (1/2-hop lists + selection)".into(),
    ]);
    t.row(vec![
        "dynamic (degree, id)".into(),
        f2(deg_sizes / k),
        deg_worst.to_string(),
        deg_wcds_always.to_string(),
        "bridging (same as static ID)".into(),
    ]);
    t.row(vec![
        "level-based (Algorithm I)".into(),
        f2(lvl_sizes / k),
        lvl_worst.to_string(),
        lvl_wcds_always.to_string(),
        "none — but election costs O(n log n)".into(),
    ]);
    t.note("the trade the paper's two algorithms embody: pay O(n log n) election messages for a");
    t.note("rank that makes the MIS a WCDS by itself (dist = 2 always), or stay O(n)-local and");
    t.note("pay a few extra dominators to bridge 3-hop MIS pairs.");
    t.note("(degree,id) often yields the smallest MIS but guarantees neither property.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_based_row_is_always_wcds_with_dist_2() {
        let t = &run(Scale::Quick)[0];
        let lvl = t.rows.iter().find(|r| r[0].contains("level-based")).expect("row");
        assert_eq!(lvl[2], "2", "Theorem 4: worst subset distance must be 2");
        assert_eq!(lvl[3], "true", "Theorem 5: level-ranked MIS is a WCDS");
    }

    #[test]
    fn all_rankings_stay_within_lemma3() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            let d: u32 = row[2].parse().unwrap();
            assert!((2..=3).contains(&d), "Lemma 3 violated: {row:?}");
        }
    }
}
