//! One module per experiment family; see `DESIGN.md` §5 for the
//! experiment-id ↔ paper-claim index.

pub mod ablation;
pub mod complexity;
pub mod dilation;
pub mod extensions;
pub mod figures;
pub mod lemmas;
pub mod maintenance;
pub mod position;
pub mod ratio;
pub mod routing;
pub mod spanner;
pub mod workloads;

use crate::util::{Scale, Table};

/// Runs the entire evaluation, in DESIGN.md order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(figures::run_fig1(scale));
    out.extend(figures::run_fig2());
    out.extend(lemmas::run_lemma1(scale));
    out.extend(lemmas::run_lemma2(scale));
    out.extend(lemmas::run_subset_distance(scale));
    out.extend(figures::run_fig6());
    out.extend(ratio::run(scale));
    out.extend(spanner::run(scale));
    out.extend(dilation::run(scale));
    out.extend(complexity::run_messages(scale));
    out.extend(complexity::run_time(scale));
    out.extend(routing::run_unicast(scale));
    out.extend(routing::run_distributed_unicast(scale));
    out.extend(routing::run_broadcast(scale));
    out.extend(maintenance::run(scale));
    out.extend(maintenance::run_distributed(scale));
    out.extend(ablation::run(scale));
    out.extend(extensions::run_pruning(scale));
    out.extend(extensions::run_robustness(scale));
    out.extend(position::run(scale));
    out.extend(workloads::run(scale));
    out
}
