//! F1, F2, F6 — the paper's illustrative figures as checkable
//! artifacts.

use crate::util::{f2, Scale, Table};
use wcds_core::ranking::{level_based_ranks, rank_order};
use wcds_core::Wcds;
use wcds_geom::deploy;
use wcds_graph::spanning::SpanningTree;
use wcds_graph::{domination, Graph, UnitDiskGraph};

/// F1 (Figure 1): unit-disk graph density.
///
/// At a fixed region, `|E|` grows quadratically with `n` — the
/// scalability problem (§1) that motivates running protocols over a
/// sparse spanner instead of `G` itself.
pub fn run_fig1(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[50, 100, 200][..], &[100, 200, 400, 800, 1600][..]);
    let side = 8.0;
    let mut t = Table::new(
        "F1 · UDG density at fixed area (Figure 1 / §1 motivation)",
        &["n", "|E|", "avg deg", "|E| / n", "|E| / n^2"],
    );
    for &n in sizes {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, 42), 1.0);
        let m = udg.graph().edge_count();
        t.row(vec![
            n.to_string(),
            m.to_string(),
            f2(udg.graph().avg_degree()),
            f2(m as f64 / n as f64),
            format!("{:.5}", m as f64 / (n * n) as f64),
        ]);
    }
    t.note("expected: |E|/n grows linearly with n (dense UDG has Θ(n²) edges),");
    t.note("while |E|/n² approaches the constant π/side² ≈ 0.049 — Θ(n²) confirmed.");
    vec![t]
}

/// F2 (Figure 2): the paper's 9-node WCDS example.
///
/// Nodes "1" and "2" (our ids 0 and 1) form a WCDS whose weakly induced
/// black-edge subgraph spans the graph, even though the two dominators
/// are not adjacent (so the set is *not* a CDS).
pub fn run_fig2() -> Vec<Table> {
    let udg = UnitDiskGraph::build(deploy::figure2(), 1.0);
    let g = udg.graph();
    let wcds = Wcds::from_mis(vec![0, 1]);
    let spanner = wcds.weakly_induced_subgraph(g);
    let mut t = Table::new(
        "F2 · the paper's Figure 2 example, reconstructed geometrically",
        &["property", "value"],
    );
    t.row(vec!["nodes / edges of G".into(), format!("{} / {}", g.node_count(), g.edge_count())]);
    t.row(vec!["candidate set {1, 2} (ids 0, 1)".into(), "checked below".into()]);
    t.row(vec![
        "is dominating".into(),
        domination::is_dominating_set(g, wcds.nodes()).to_string(),
    ]);
    t.row(vec![
        "is weakly-connected dominating".into(),
        wcds.is_valid(g).to_string(),
    ]);
    t.row(vec![
        "is CONNECTED dominating".into(),
        domination::is_connected_dominating_set(g, wcds.nodes()).to_string(),
    ]);
    t.row(vec!["black (weakly induced) edges".into(), spanner.edge_count().to_string()]);
    t.row(vec![
        "black subgraph connected".into(),
        wcds_graph::traversal::is_connected(&spanner).to_string(),
    ]);
    t.note("expected: dominating ✓, weakly connected ✓, NOT a CDS — matching Figure 2.");
    vec![t]
}

/// F6 (Figure 6): level-based ranking on the paper's example tree.
///
/// Reconstructs a tree with the figure's labelled nodes — root `0` at
/// level 0, node `10` at level 1, node `7` at level 3 — and prints the
/// lexicographic rank order.
pub fn run_fig6() -> Vec<Table> {
    // a small tree realising the figure's levels:
    //   0 ── 10 ── 5 ── 7        (root 0; 10 at L1; 5 at L2; 7 at L3)
    //   0 ── 3                    (3 at L1)
    let g = Graph::from_edges(11, [(0, 10), (10, 5), (5, 7), (0, 3)]);
    // restrict to the nodes used (others isolated; BFS tree needs
    // connected graph, so build the tree over the component instead)
    let used = [0usize, 3, 5, 7, 10];
    let sub = g.induced(&used);
    // SpanningTree requires full connectivity; work on a compacted copy
    let mut t = Table::new(
        "F6 · level-based ranking (Figure 6): rank = (level, id)",
        &["node", "level", "rank", "position in rank order"],
    );
    // compact relabel: map used nodes to 0..5 preserving ids via table
    let ids: Vec<u64> = used.iter().map(|&u| u as u64).collect();
    let mut edges = Vec::new();
    for e in sub.edges() {
        let (a, b) = e.endpoints();
        let ai = used.iter().position(|&u| u == a).expect("edge endpoints are used nodes");
        let bi = used.iter().position(|&u| u == b).expect("edge endpoints are used nodes");
        edges.push((ai, bi));
    }
    let compact = Graph::from_edges(used.len(), edges);
    let tree = SpanningTree::bfs(&compact, 0).expect("figure tree is connected");
    let ranks = wcds_core::ranking::level_based_ranks_with_ids(&tree, |u| ids[u]);
    let order = rank_order(&ranks);
    for (i, &u) in used.iter().enumerate() {
        let pos = order.iter().position(|&x| x == i).expect("every node is ranked");
        t.row(vec![
            u.to_string(),
            tree.level(i).to_string(),
            format!("{}", ranks[i]),
            pos.to_string(),
        ]);
    }
    t.note("expected: root (0,0) first; (1,10) sorts after (1,3); (3,7) last —");
    t.note("level dominates, id breaks ties, exactly as Figure 6 annotates.");

    // also confirm the generic property on a random tree
    let g2 = wcds_graph::generators::connected_gnp(40, 0.08, 4);
    let tree2 = SpanningTree::bfs(&g2, 0).expect("connected");
    let ranks2 = level_based_ranks(&tree2);
    let order2 = rank_order(&ranks2);
    let sorted_by_level =
        order2.windows(2).all(|w| tree2.level(w[0]) <= tree2.level(w[1]));
    t.note(format!("random-tree check (n=40): rank order sorted by level = {sorted_by_level}"));
    vec![t]
}

/// Writes SVG renderings of the paper-style figures into `dir`,
/// returning the written paths: the Figure 2 WCDS example, a dense UDG
/// (Figure 1's motivation), and an Algorithm II backbone over it.
///
/// # Errors
///
/// Returns an I/O error if `dir` cannot be created or written.
pub fn write_figure_svgs(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    use wcds_core::algo2::AlgorithmTwo;
    use wcds_core::WcdsConstruction;
    use wcds_vis::SceneBuilder;

    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();

    // Figure 2: the paper's 9-node WCDS example
    let udg = UnitDiskGraph::build(deploy::figure2(), 1.0);
    let wcds = Wcds::from_mis(vec![0, 1]);
    let spanner = wcds.weakly_induced_subgraph(udg.graph());
    let svg = SceneBuilder::new(&udg)
        .background_edges(udg.graph())
        .highlight_edges(&spanner, "#111111", 1.8)
        .wcds(&wcds)
        .caption("Figure 2: WCDS {1, 2} and its weakly induced subgraph")
        .render();
    let p = dir.join("fig2_wcds_example.svg");
    std::fs::write(&p, svg)?;
    written.push(p);

    // Figure 1 flavor: a dense UDG, then the same deployment with its
    // Algorithm II backbone — the visual version of T3b's crossover
    let udg = UnitDiskGraph::build(deploy::uniform(160, 6.0, 6.0, 42), 1.0);
    let svg = SceneBuilder::new(&udg)
        .background_edges(udg.graph())
        .caption(format!(
            "Figure 1: unit-disk graph, {} nodes / {} edges",
            udg.node_count(),
            udg.graph().edge_count()
        ))
        .render();
    let p = dir.join("fig1_udg.svg");
    std::fs::write(&p, svg)?;
    written.push(p);

    if wcds_graph::traversal::is_connected(udg.graph()) {
        let result = AlgorithmTwo::new().construct(udg.graph());
        let svg = SceneBuilder::new(&udg)
            .background_edges(udg.graph())
            .highlight_edges(&result.spanner, "#111111", 1.4)
            .wcds(&result.wcds)
            .caption(format!("Algorithm II backbone: {}", result.wcds))
            .render();
        let p = dir.join("backbone_algo2.svg");
        std::fs::write(&p, svg)?;
        written.push(p);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_svgs_are_written() {
        let dir = std::env::temp_dir().join(format!("wcds-figs-{}", std::process::id()));
        let written = write_figure_svgs(&dir).expect("writes");
        assert!(written.len() >= 2);
        for p in &written {
            let content = std::fs::read_to_string(p).expect("readable");
            assert!(content.starts_with("<svg"), "{p:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fig1_shows_superlinear_growth() {
        let tables = run_fig1(Scale::Quick);
        let t = &tables[0];
        let first: f64 = t.rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(last > 2.0 * first, "edges/node should grow with n at fixed area");
    }

    #[test]
    fn fig2_validates_papers_claims() {
        let t = &run_fig2()[0];
        let find = |k: &str| {
            t.rows
                .iter()
                .find(|r| r[0].contains(k))
                .unwrap_or_else(|| panic!("missing row {k}"))[1]
                .clone()
        };
        assert_eq!(find("is dominating"), "true");
        assert_eq!(find("weakly-connected"), "true");
        assert_eq!(find("CONNECTED"), "false");
    }

    #[test]
    fn fig6_rank_order_matches_paper() {
        let t = &run_fig6()[0];
        let pos = |node: &str| -> usize {
            t.rows.iter().find(|r| r[0] == node).expect("node row")[3].parse().unwrap()
        };
        assert_eq!(pos("0"), 0, "root first");
        assert!(pos("3") < pos("10"), "(1,3) before (1,10)");
        assert_eq!(pos("7"), 4, "(3,7) last");
    }
}
