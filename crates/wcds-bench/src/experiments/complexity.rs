//! T5/T6 — message and time complexity of the distributed protocols
//! (§4.1's `O(n log n)` vs Theorem 12's `O(n)`).

use crate::util::{connected_uniform_udg, f2, side_for_avg_degree, Scale, Table};
use wcds_core::{algo1, algo2};
use wcds_graph::generators;

/// T5: messages — Algorithm I (dominated by leader election) vs
/// Algorithm II (strictly `O(n)`).
pub fn run_messages(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[64, 128][..], &[125, 250, 500, 1000, 2000][..]);
    let mut t = Table::new(
        "T5 · distributed message complexity (paper: O(n log n) vs O(n))",
        &[
            "n",
            "algo-1 total",
            "  election",
            "  levels",
            "  marking",
            "per-node /log n",
            "algo-2 total",
            "algo-2 per-node",
        ],
    );
    for &n in sizes {
        let side = side_for_avg_degree(n, 12.0);
        let udg = connected_uniform_udg(n, side, 5);
        let g = udg.graph();
        let run1 = algo1::distributed::run_synchronous(g);
        let run2 = algo2::distributed::run_synchronous(g);
        let m1 = run1.total_messages();
        let m2 = run2.report.messages.total();
        t.row(vec![
            n.to_string(),
            m1.to_string(),
            run1.election_report.messages.total().to_string(),
            run1.level_report.messages.total().to_string(),
            run1.marking_report.messages.total().to_string(),
            f2(m1 as f64 / n as f64 / (n as f64).ln()),
            m2.to_string(),
            f2(m2 as f64 / n as f64),
        ]);
    }
    t.note("expected: algo-1's budget is dominated by election; its per-node/log n column");
    t.note("stays roughly flat (Θ(n log n)); algo-2's per-node count is a flat constant (Θ(n)).");
    vec![t]
}

/// T6: time (synchronous rounds) — `O(n)` worst case, realised by the
/// ascending-ID chain; random UDGs finish much faster.
pub fn run_time(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[64, 128][..], &[125, 250, 500, 1000][..]);
    let mut t = Table::new(
        "T6 · distributed time in synchronous rounds (Theorem 12: O(n))",
        &["topology", "n", "algo-1 rounds", "algo-2 rounds", "rounds / n"],
    );
    for &n in sizes {
        // adversarial chain: ascending IDs force sequential MIS decisions
        let chain = generators::path(n);
        let r1 = algo1::distributed::run_synchronous(&chain);
        let r2 = algo2::distributed::run_synchronous(&chain);
        t.row(vec![
            "chain (worst case)".into(),
            n.to_string(),
            r1.total_time().to_string(),
            r2.report.rounds.to_string(),
            f2(r2.report.rounds as f64 / n as f64),
        ]);
        let side = side_for_avg_degree(n, 12.0);
        let udg = connected_uniform_udg(n, side, 3);
        let r1 = algo1::distributed::run_synchronous(udg.graph());
        let r2 = algo2::distributed::run_synchronous(udg.graph());
        t.row(vec![
            "random UDG".into(),
            n.to_string(),
            r1.total_time().to_string(),
            r2.report.rounds.to_string(),
            f2(r2.report.rounds as f64 / n as f64),
        ]);
    }
    t.note("expected: chain rounds grow linearly in n (rounds/n ≈ constant), realising the");
    t.note("Theorem 12 worst case; random UDGs finish in far fewer (diameter-driven) rounds.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo2_messages_are_linear() {
        let t = &run_messages(Scale::Quick)[0];
        for row in &t.rows {
            let per_node: f64 = row[7].parse().unwrap();
            assert!(per_node < 12.0, "algo-2 per-node messages too high: {row:?}");
        }
    }

    #[test]
    fn algo1_sends_more_than_algo2() {
        let t = &run_messages(Scale::Quick)[0];
        for row in &t.rows {
            let m1: f64 = row[1].parse().unwrap();
            let m2: f64 = row[6].parse().unwrap();
            assert!(m1 > m2, "election overhead should dominate: {row:?}");
        }
    }

    #[test]
    fn chain_time_is_linear() {
        let t = &run_time(Scale::Quick)[0];
        for row in t.rows.iter().filter(|r| r[0].contains("chain")) {
            let n: f64 = row[1].parse().unwrap();
            let rounds: f64 = row[3].parse().unwrap();
            assert!(rounds >= n / 3.0, "chain should be Θ(n) rounds: {row:?}");
            assert!(rounds <= 4.0 * n, "chain rounds super-linear: {row:?}");
        }
    }
}
