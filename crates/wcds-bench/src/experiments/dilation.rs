//! T4 — spanner dilation (Theorem 11): `h' ≤ 3h + 2` and
//! `ℓ' ≤ 6ℓ + 5` for Algorithm II's spanner, measured exactly over all
//! non-adjacent pairs.

use crate::util::{connected_uniform_udg, f2, f3, side_for_avg_degree, Scale, Table};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::dilation::DilationReport;
use wcds_core::WcdsConstruction;

/// Runs the dilation sweep.
pub fn run(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[60, 120][..], &[100, 200, 400][..]);
    let trials = scale.pick(2, 6);
    let mut t = Table::new(
        "T4 · dilation of the Algorithm II spanner (Theorem 11)",
        &[
            "n",
            "max h'/h",
            "worst (h, h')",
            "3h+2 holds",
            "max ℓ'/ℓ",
            "worst (ℓ, ℓ')",
            "6ℓ+5 holds",
        ],
    );
    for &n in sizes {
        let side = side_for_avg_degree(n, 11.0);
        let mut worst_topo = 0.0f64;
        let mut worst_geo = 0.0f64;
        let mut topo_pair = (0.0, 0.0);
        let mut geo_pair = (0.0, 0.0);
        let mut topo_ok = true;
        let mut geo_ok = true;
        for seed in 0..trials {
            let udg = connected_uniform_udg(n, side, seed as u64 * 3 + 1);
            let result = AlgorithmTwo::new().construct(udg.graph());
            let rep = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
            if rep.topological_ratio() > worst_topo {
                worst_topo = rep.topological_ratio();
                if let Some(w) = rep.topological {
                    topo_pair = (w.in_graph, w.in_spanner);
                }
            }
            if rep.geometric_ratio() > worst_geo {
                worst_geo = rep.geometric_ratio();
                if let Some(w) = rep.geometric {
                    geo_pair = (w.in_graph, w.in_spanner);
                }
            }
            topo_ok &= rep.satisfies_topological_bound();
            geo_ok &= rep.satisfies_geometric_bound();
        }
        t.row(vec![
            n.to_string(),
            f3(worst_topo),
            format!("({}, {})", topo_pair.0, topo_pair.1),
            topo_ok.to_string(),
            f3(worst_geo),
            format!("({}, {})", f2(geo_pair.0), f2(geo_pair.1)),
            geo_ok.to_string(),
        ]);
    }
    t.note("expected: both bound columns 'true' on every instance. Raw ratios can exceed the");
    t.note("asymptotic 3 (hops) / 6 (length) at SHORT distances — the +2 / +5 additive terms");
    t.note("dominate there — but the affine bounds themselves never fail.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem11_bounds_hold_in_sweep() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            assert_eq!(row[3], "true", "topological bound failed: {row:?}");
            assert_eq!(row[6], "true", "geometric bound failed: {row:?}");
            // dilation ratios are at least 1
            assert!(row[1].parse::<f64>().unwrap() >= 1.0);
        }
    }
}
