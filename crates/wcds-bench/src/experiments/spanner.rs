//! T3 — spanner sparseness (Theorems 8 and 10): `|E'| = Θ(n)` while
//! `|E| = Θ(n²)` at fixed area.

use crate::util::{connected_uniform_udg, f2, side_for_avg_degree, Scale, Table};
use wcds_core::algo1::AlgorithmOne;
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::spanner::SpannerStats;
use wcds_core::WcdsConstruction;

/// Runs the sparseness sweep.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![fixed_density(scale), fixed_area(scale)]
}

/// At fixed density, both `|E|` and `|E'|` are linear; the point is the
/// constant and the theorem bounds.
fn fixed_density(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[80, 160][..], &[125, 250, 500, 1000, 2000][..]);
    let mut t = Table::new(
        "T3a · spanner sparseness at fixed density (avg deg ≈ 14)",
        &["n", "|E|", "|E'| algo-1", "≤5·gray?", "|E'| algo-2", "≤9·gray+24·|S|?", "E'/n algo-2"],
    );
    for &n in sizes {
        let side = side_for_avg_degree(n, 14.0);
        let udg = connected_uniform_udg(n, side, 11);
        let g = udg.graph();
        let r1 = AlgorithmOne::new().construct(g);
        let s1 = SpannerStats::compute(g, &r1.wcds);
        let r2 = AlgorithmTwo::new().construct(g);
        let s2 = SpannerStats::compute(g, &r2.wcds);
        t.row(vec![
            n.to_string(),
            g.edge_count().to_string(),
            s1.spanner_edges.to_string(),
            s1.satisfies_theorem8_bound().to_string(),
            s2.spanner_edges.to_string(),
            s2.satisfies_theorem10_bound().to_string(),
            f2(s2.edges_per_node()),
        ]);
    }
    t.note("expected: both bound columns 'true'; E'/n approaches a constant (linear edges).");
    t
}

/// At fixed area, `|E|` grows quadratically but `|E'|` stays linear —
/// the headline sparse-spanner result.
fn fixed_area(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[100, 200][..], &[150, 300, 600, 1200][..]);
    let side = 7.0;
    let mut t = Table::new(
        "T3b · spanner vs UDG growth at FIXED area (7×7)",
        &["n", "|E|", "|E|/n", "|E'| algo-2", "|E'|/n", "kept %"],
    );
    for &n in sizes {
        let udg = connected_uniform_udg(n, side, 23);
        let g = udg.graph();
        let r2 = AlgorithmTwo::new().construct(g);
        let s2 = SpannerStats::compute(g, &r2.wcds);
        t.row(vec![
            n.to_string(),
            g.edge_count().to_string(),
            f2(g.edge_count() as f64 / n as f64),
            s2.spanner_edges.to_string(),
            f2(s2.edges_per_node()),
            f2(100.0 * s2.retention()),
        ]);
    }
    t.note("expected: |E|/n grows with n (quadratic edges) while |E'|/n stays near-constant —");
    t.note("the crossover that makes running protocols on G' instead of G pay off.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_and_spanner_is_linear() {
        let t = fixed_density(Scale::Quick);
        for row in &t.rows {
            assert_eq!(row[3], "true", "Theorem 8 bound failed: {row:?}");
            assert_eq!(row[5], "true", "Theorem 10 bound failed: {row:?}");
        }
    }

    #[test]
    fn fixed_area_shows_divergence() {
        let t = fixed_area(Scale::Quick);
        let first_e_per_n: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last_e_per_n: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        let first_s_per_n: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let last_s_per_n: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(last_e_per_n > 1.5 * first_e_per_n, "G should densify");
        // G' grows strictly slower than G as density rises (it is the
        // one that flattens out; exact flatness needs the Full sweep)
        assert!(
            last_s_per_n / first_s_per_n < last_e_per_n / first_e_per_n,
            "G' ({first_s_per_n} → {last_s_per_n}) should densify slower than G \
             ({first_e_per_n} → {last_e_per_n})"
        );
    }
}
