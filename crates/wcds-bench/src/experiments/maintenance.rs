//! T9 — WCDS maintenance under mobility (§4.2 extension): validity
//! across a motion trace and repair locality.

use crate::util::{connected_uniform_udg, f2, side_for_avg_degree, Scale, Table};
use wcds_core::maintenance::MaintainedWcds;
use wcds_geom::{deploy, BoundingBox, Point};
use wcds_graph::{domination, traversal, NodeId};

/// T9b: the distributed maintenance protocol — repair locality
/// measured by who actually transmitted.
pub fn run_distributed(scale: Scale) -> Vec<Table> {
    use wcds_core::maintenance::distributed::DynamicBackbone;

    let n = scale.pick(120, 400);
    let steps = scale.pick(10, 40);
    let side = side_for_avg_degree(n, 14.0);
    let mut t = Table::new(
        "T9b · distributed MIS maintenance (protocol runs; §4.2 key technique)",
        &[
            "motion model",
            "steps",
            "valid steps",
            "mean msgs/step",
            "mean active nodes",
            "max activity radius",
        ],
    );
    for (name, single) in [("single walker", true), ("global jitter (0.1)", false)] {
        let udg = connected_uniform_udg(n, side, 47);
        let mut net = DynamicBackbone::new(udg.points().to_vec(), 1.0);
        let mut valid = 0;
        let mut msgs = 0u64;
        let mut active = 0usize;
        let mut max_radius = 0u32;
        let region = BoundingBox::with_size(side, side);
        for step in 0..steps {
            let repair = if single {
                let u = (step * 13) % n;
                let old = net.points()[u];
                let target =
                    Point::new((old.x + 0.45).min(side), (old.y + 0.31).min(side));
                net.apply_motion(&[(u, target)]).expect("repair quiesces")
            } else {
                let moved = deploy::perturb(net.points(), region, 0.1, 3000 + step as u64);
                let moves: Vec<(NodeId, Point)> = moved.iter().copied().enumerate().collect();
                net.apply_motion(&moves).expect("repair quiesces")
            };
            if net.mis_is_valid() {
                valid += 1;
            }
            msgs += repair.report.messages.total();
            active += repair.active_nodes.len();
            max_radius = max_radius.max(repair.activity_radius.unwrap_or(0));
        }
        let k = steps as f64;
        t.row(vec![
            name.into(),
            steps.to_string(),
            valid.to_string(),
            f2(msgs as f64 / k),
            f2(active as f64 / k),
            max_radius.to_string(),
        ]);
    }
    t.note("expected: every step valid; for a single walker only a handful of nodes speak and");
    t.note("all activity sits within 3 hops of the topology change — the paper's locality claim,");
    t.note("this time measured from actual protocol transmissions.");
    vec![t]
}

/// Runs the mobility trace experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(100, 400);
    let steps = scale.pick(10, 50);
    let side = side_for_avg_degree(n, 14.0);
    let region = BoundingBox::with_size(side, side);
    let mut t = Table::new(
        "T9 · WCDS maintenance under mobility (3-hop repair locality)",
        &["motion model", "steps", "valid steps", "mean |ΔU|", "max repair radius", "mean |U|"],
    );

    // model A: global jitter — every node moves a little each step
    {
        let udg = connected_uniform_udg(n, side, 31);
        let mut net = MaintainedWcds::new(udg.points().to_vec(), 1.0);
        let mut valid = 0;
        let mut delta_sum = 0usize;
        let mut max_radius = 0u32;
        let mut size_sum = 0usize;
        for step in 0..steps {
            let moved = deploy::perturb(net.points(), region, 0.1, 1000 + step as u64);
            let moves: Vec<(NodeId, Point)> = moved.iter().copied().enumerate().collect();
            let report = net.apply_motion(&moves);
            let w = net.wcds();
            let ok = domination::is_dominating_set(net.graph(), w.nodes())
                && (!traversal::is_connected(net.graph()) || w.is_valid(net.graph()));
            if ok {
                valid += 1;
            }
            delta_sum += report.promoted.len() + report.demoted.len();
            max_radius = max_radius.max(report.locality_radius.unwrap_or(0));
            size_sum += w.len();
        }
        t.row(vec![
            "global jitter (0.1)".into(),
            steps.to_string(),
            valid.to_string(),
            f2(delta_sum as f64 / steps as f64),
            max_radius.to_string(),
            f2(size_sum as f64 / steps as f64),
        ]);
    }

    // model B: single walker — one node crosses the field
    {
        let udg = connected_uniform_udg(n, side, 37);
        let mut net = MaintainedWcds::new(udg.points().to_vec(), 1.0);
        let mut valid = 0;
        let mut delta_sum = 0usize;
        let mut max_radius = 0u32;
        let mut size_sum = 0usize;
        let walker = 0usize;
        for step in 0..steps {
            let progress = (step + 1) as f64 / steps as f64;
            let target = Point::new(progress * side, side / 2.0);
            let report = net.apply_motion(&[(walker, target)]);
            let w = net.wcds();
            let ok = domination::is_dominating_set(net.graph(), w.nodes())
                && (!traversal::is_connected(net.graph()) || w.is_valid(net.graph()));
            if ok {
                valid += 1;
            }
            delta_sum += report.promoted.len() + report.demoted.len();
            max_radius = max_radius.max(report.locality_radius.unwrap_or(0));
            size_sum += w.len();
        }
        t.row(vec![
            "single walker".into(),
            steps.to_string(),
            valid.to_string(),
            f2(delta_sum as f64 / steps as f64),
            max_radius.to_string(),
            f2(size_sum as f64 / steps as f64),
        ]);
    }

    // model C: churn — joins and leaves alternate
    {
        let udg = connected_uniform_udg(n, side, 41);
        let mut net = MaintainedWcds::new(udg.points().to_vec(), 1.0);
        let mut valid = 0;
        let mut delta_sum = 0usize;
        let mut max_radius = 0u32;
        let mut size_sum = 0usize;
        for step in 0..steps {
            let report = if step % 2 == 0 {
                let p = Point::new(
                    (step as f64 * 0.731) % side,
                    (step as f64 * 1.177) % side,
                );
                net.apply_join(p)
            } else {
                net.apply_leave((step * 13) % net.graph().node_count())
            };
            let w = net.wcds();
            let ok = domination::is_dominating_set(net.graph(), w.nodes())
                && (!traversal::is_connected(net.graph()) || w.is_valid(net.graph()));
            if ok {
                valid += 1;
            }
            delta_sum += report.promoted.len() + report.demoted.len();
            max_radius = max_radius.max(report.locality_radius.unwrap_or(0));
            size_sum += w.len();
        }
        t.row(vec![
            "join/leave churn".into(),
            steps.to_string(),
            valid.to_string(),
            f2(delta_sum as f64 / steps as f64),
            max_radius.to_string(),
            f2(size_sum as f64 / steps as f64),
        ]);
    }

    t.note("expected: every step valid; single-node disturbances repair within the paper's");
    t.note("3-hop locality (bridge re-selection can add one hop); |U| stays near its initial size.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_steps_remain_valid() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            assert_eq!(row[1], row[2], "some maintenance step went invalid: {row:?}");
        }
    }

    #[test]
    fn distributed_maintenance_is_valid_and_local() {
        let t = &run_distributed(Scale::Quick)[0];
        for row in &t.rows {
            assert_eq!(row[1], row[2], "invalid step: {row:?}");
        }
        let walker = t.rows.iter().find(|r| r[0] == "single walker").expect("row");
        let radius: u32 = walker[5].parse().unwrap();
        assert!(radius <= 3, "distributed activity radius {radius} > 3");
    }

    #[test]
    fn single_walker_repairs_are_local() {
        let t = &run(Scale::Quick)[0];
        let walker = t.rows.iter().find(|r| r[0] == "single walker").expect("row");
        let radius: u32 = walker[4].parse().unwrap();
        assert!(radius <= 4, "single-node repair radius {radius} > 3-hop locality (+1)");
    }
}
