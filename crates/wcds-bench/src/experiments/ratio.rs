//! T1/T2 — approximation ratios (Lemma 7, Theorem 10).
//!
//! Small instances are compared against the **exact** minimum WCDS
//! (branch search); large instances against the certified UDG lower
//! bound `max(⌈|MIS|/5⌉, ⌈n/(Δ+1)⌉)`.

use crate::util::{connected_uniform_udg, f2, side_for_avg_degree, Scale, Table};
use wcds_baselines::exact;
use wcds_baselines::{GreedyWcds, MisTreeCds};
use wcds_core::algo1::AlgorithmOne;
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::WcdsConstruction;

/// Runs both ratio tables.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![exact_ratio_table(scale), bound_ratio_table(scale)]
}

/// T1a: measured ratio against the exact optimum on small UDGs.
fn exact_ratio_table(scale: Scale) -> Table {
    let trials = scale.pick(5, 30);
    let n = 14;
    let mut t = Table::new(
        "T1 · approximation ratio vs EXACT minimum WCDS (n = 14 UDGs)",
        &["algorithm", "mean |WCDS|", "mean opt", "mean ratio", "worst ratio", "proven bound"],
    );
    let algos: Vec<(&'static str, Box<dyn WcdsConstruction>, &'static str)> = vec![
        ("algorithm-1", Box::new(AlgorithmOne::new()), "5"),
        ("algorithm-2", Box::new(AlgorithmTwo::new()), "122.5"),
        ("greedy-wcds", Box::new(GreedyWcds::new()), "O(ln Δ)"),
        ("mis-tree-cds", Box::new(MisTreeCds::new()), "(CDS)"),
    ];
    // precompute instances + optima once
    let mut instances = Vec::new();
    for seed in 0..trials {
        let udg = connected_uniform_udg(n, 2.6, seed as u64);
        let opt = exact::minimum_wcds(udg.graph()).len();
        instances.push((udg, opt));
    }
    for (name, algo, bound) in &algos {
        let mut sizes = 0.0;
        let mut opts = 0.0;
        let mut worst: f64 = 0.0;
        let mut ratios = 0.0;
        for (udg, opt) in &instances {
            let size = algo.construct(udg.graph()).wcds.len();
            let r = size as f64 / *opt as f64;
            sizes += size as f64;
            opts += *opt as f64;
            ratios += r;
            worst = worst.max(r);
        }
        let k = instances.len() as f64;
        t.row(vec![
            (*name).into(),
            f2(sizes / k),
            f2(opts / k),
            f2(ratios / k),
            f2(worst),
            (*bound).into(),
        ]);
    }
    t.note("expected: algorithm-1 worst ratio far below its proven 5 (typically ≤ 2.5);");
    t.note("algorithm-2 close to algorithm-1 (the 122.5 constant is loose);");
    t.note("CDS baselines ≥ WCDS algorithms (connectivity is the stronger requirement).");
    t
}

/// T1b/T2: size against the certified lower bound on larger UDGs.
fn bound_ratio_table(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[60, 120][..], &[100, 250, 500, 1000][..]);
    let trials = scale.pick(3, 10);
    let mut t = Table::new(
        "T2 · size vs certified lower bound (avg degree ≈ 12 UDGs)",
        &["n", "LB", "algo-1 (≤5·opt)", "algo-2 |S|+|C|", "|C|/|S| (≤23.5)", "greedy-wcds"],
    );
    for &n in sizes {
        let side = side_for_avg_degree(n, 12.0);
        let mut lb = 0.0;
        let mut a1 = 0.0;
        let mut s2 = 0.0;
        let mut c2 = 0.0;
        let mut gw = 0.0;
        for seed in 0..trials {
            let udg = connected_uniform_udg(n, side, seed as u64 + 7);
            lb += exact::wcds_lower_bound_udg(udg.graph()) as f64;
            a1 += AlgorithmOne::new().construct(udg.graph()).wcds.len() as f64;
            let r2 = AlgorithmTwo::new().construct(udg.graph()).wcds;
            s2 += r2.mis_dominators().len() as f64;
            c2 += r2.additional_dominators().len() as f64;
            if n <= 250 {
                gw += GreedyWcds::new().construct(udg.graph()).wcds.len() as f64;
            }
        }
        let k = trials as f64;
        t.row(vec![
            n.to_string(),
            f2(lb / k),
            f2(a1 / k),
            format!("{} + {}", f2(s2 / k), f2(c2 / k)),
            f2(if s2 > 0.0 { c2 / s2 } else { 0.0 }),
            if n <= 250 { f2(gw / k) } else { "(skipped: O(n³) greedy)".into() },
        ]);
    }
    t.note("LB ≤ opt, so size/LB upper-bounds the true ratio; expected: algo-1 within ~5·LB,");
    t.note("|C|/|S| a small constant (≪ the 23.5 of Theorem 10); sizes grow linearly in n.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ratios_respect_proven_bounds() {
        let t = exact_ratio_table(Scale::Quick);
        let worst = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).expect("row")[4].parse().unwrap()
        };
        assert!(worst("algorithm-1") <= 5.0);
        assert!(worst("algorithm-2") <= 122.5);
        // every ratio is at least 1 (opt is optimal)
        for row in &t.rows {
            assert!(row[3].parse::<f64>().unwrap() >= 1.0, "{row:?}");
        }
    }

    #[test]
    fn lower_bound_never_above_algorithms() {
        let t = bound_ratio_table(Scale::Quick);
        for row in &t.rows {
            let lb: f64 = row[1].parse().unwrap();
            let a1: f64 = row[2].parse().unwrap();
            assert!(lb <= a1 + 1e-9, "{row:?}");
        }
    }
}
