//! T11 — position-less vs position-based spanners (our addition,
//! drawing the contrast with the paper's related work `[12]`/`[15]`).
//!
//! RNG and Gabriel graphs need node coordinates; the WCDS spanner needs
//! only neighbor IDs. This sweep shows what each pays and buys: edge
//! budget, hop dilation, geometric dilation, and whether the
//! construction also yields a routing backbone (a dominating set).

use crate::util::{connected_uniform_udg, f2, f3, side_for_avg_degree, Scale, Table};
use wcds_baselines::proximity::{gabriel_graph, relative_neighborhood_graph};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::dilation::DilationReport;
use wcds_core::WcdsConstruction;

/// Runs the spanner comparison.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(100, 300);
    let trials = scale.pick(2, 6);
    let side = side_for_avg_degree(n, 13.0);
    let mut t = Table::new(
        "T11 · spanner shoot-out: position-less WCDS vs position-based RNG/Gabriel",
        &[
            "spanner",
            "needs positions",
            "E'/n",
            "max h'/h",
            "max ℓ'/ℓ",
            "weight / MST",
            "backbone (DS)?",
        ],
    );

    let mut rows: Vec<(&str, bool, f64, f64, f64, f64, bool)> = vec![
        ("algo-2 WCDS", false, 0.0, 0.0, 0.0, 0.0, true),
        ("RNG", true, 0.0, 0.0, 0.0, 0.0, false),
        ("Gabriel", true, 0.0, 0.0, 0.0, 0.0, false),
    ];
    for seed in 0..trials {
        let udg = connected_uniform_udg(n, side, seed as u64 + 83);
        let g = udg.graph();
        // Euclidean MST weight — the lightest possible connected
        // subgraph, the natural yardstick for total spanner weight
        let mst = wcds_graph::spanning::minimum_spanning_tree(g, |u, v| {
            udg.point(u).distance(udg.point(v))
        })
        .expect("connected");
        let weight_of = |s: &wcds_graph::Graph| -> f64 {
            s.edges()
                .iter()
                .map(|e| {
                    let (u, v) = e.endpoints();
                    udg.point(u).distance(udg.point(v))
                })
                .sum()
        };
        let mst_weight = weight_of(&mst);
        let spanners = [
            AlgorithmTwo::new().construct(g).spanner,
            relative_neighborhood_graph(&udg),
            gabriel_graph(&udg),
        ];
        for (row, spanner) in rows.iter_mut().zip(spanners) {
            row.2 += spanner.edge_count() as f64 / n as f64 / trials as f64;
            let d = DilationReport::measure(g, &spanner, udg.points());
            row.3 = row.3.max(d.topological_ratio());
            row.4 = row.4.max(d.geometric_ratio());
            row.5 += weight_of(&spanner) / mst_weight / trials as f64;
        }
    }
    for (name, positions, epn, topo, geo, weight, backbone) in rows {
        t.row(vec![
            name.into(),
            positions.to_string(),
            f2(epn),
            f3(topo),
            f3(geo),
            f2(weight),
            backbone.to_string(),
        ]);
    }
    t.note("the trade: proximity graphs are sparser but pay large worst-case hop dilation");
    t.note("(RNG famously has no constant hop-stretch bound), need coordinates, and provide no");
    t.note("dominating backbone. The WCDS spanner keeps more edges but bounds dilation (3h+2,");
    t.note("6ℓ+5) and doubles as the routing/broadcast backbone — without any positions.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_shapes_hold() {
        let t = &run(Scale::Quick)[0];
        let get = |name: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == name).expect("row")[col].parse().unwrap()
        };
        // proximity graphs are sparser than the WCDS spanner
        assert!(get("RNG", 2) <= get("algo-2 WCDS", 2) + 0.5);
        // the MST lower-bounds every connected spanner's weight
        for row in &t.rows {
            assert!(row[5].parse::<f64>().unwrap() >= 1.0 - 1e-9, "{row:?}");
            assert!(row[3].parse::<f64>().unwrap() >= 1.0);
        }
        // RNG weight is within a small factor of the MST (classic fact)
        assert!(get("RNG", 5) < 3.0);
    }
}
