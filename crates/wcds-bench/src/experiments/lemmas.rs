//! F3, F4, F5 — the structural lemmas measured (Lemmas 1–3,
//! Theorem 4).

use crate::util::{connected_uniform_udg, f2, Scale, Table};
use wcds_core::algo1::AlgorithmOne;
use wcds_core::mis::{greedy_mis, RankingMode};
use wcds_core::properties;
use wcds_geom::deploy;
use wcds_graph::UnitDiskGraph;

/// F3 (Lemma 1 / Figure 3): a non-MIS node of a UDG has at most 5 MIS
/// neighbors.
pub fn run_lemma1(scale: Scale) -> Vec<Table> {
    let (trials, n) = scale.pick((4, 150), (25, 600));
    let mut t = Table::new(
        "F3 · Lemma 1: max MIS neighbors of any node (bound: 5)",
        &["deployment", "trials", "n", "max observed", "bound", "violations"],
    );
    for (name, side, torus) in [
        ("sparse", 9.0f64, false),
        ("medium", 6.0, false),
        ("dense", 3.5, false),
        ("dense torus (no boundary)", 8.0, true),
    ] {
        let mut max_obs = 0;
        let mut violations = 0;
        for seed in 0..trials {
            let pts = deploy::uniform(n, side, side, seed);
            let udg = if torus {
                UnitDiskGraph::build_torus(pts, 1.0, side, side)
            } else {
                UnitDiskGraph::build(pts, 1.0)
            };
            let mis = greedy_mis(udg.graph(), RankingMode::StaticId);
            let m = properties::max_mis_neighbors(udg.graph(), &mis);
            max_obs = max_obs.max(m);
            if m > 5 {
                violations += 1;
            }
        }
        t.row(vec![
            name.into(),
            trials.to_string(),
            n.to_string(),
            max_obs.to_string(),
            "5".into(),
            violations.to_string(),
        ]);
    }
    t.note("expected: max observed ≤ 5 with zero violations on every deployment, including");
    t.note("the boundary-free torus (Lemma 1 is a local packing argument).");
    vec![t]
}

/// F4 (Lemma 2 / Figure 4): MIS nodes exactly 2 hops from an MIS node
/// number at most 23; within 3 hops at most 47 (annulus packing).
pub fn run_lemma2(scale: Scale) -> Vec<Table> {
    let (trials, n) = scale.pick((3, 250), (15, 900));
    let mut t = Table::new(
        "F4 · Lemma 2: MIS nodes near an MIS node (bounds: 23 at =2 hops, 47 within 3)",
        &["density (side)", "max @2 hops", "bound", "max ≤3 hops", "bound", "violations"],
    );
    for side in [3.0f64, 4.5, 6.0] {
        let mut max2 = 0;
        let mut max3 = 0;
        let mut violations = 0;
        for seed in 0..trials {
            let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), 1.0);
            let mis = greedy_mis(udg.graph(), RankingMode::StaticId);
            let (m2, m3) = properties::lemma2_maxima(udg.graph(), &mis);
            max2 = max2.max(m2);
            max3 = max3.max(m3);
            if m2 > 23 || m3 > 47 {
                violations += 1;
            }
        }
        t.row(vec![
            f2(side),
            max2.to_string(),
            "23".into(),
            max3.to_string(),
            "47".into(),
            violations.to_string(),
        ]);
    }
    t.note("bounds re-derived from the paper's annulus argument: (2.5²−0.5²)/0.5² = 24 (exclusive)");
    t.note("and (3.5²−0.5²)/0.5² = 48 (exclusive); the provided text's numerals are OCR-garbled.");
    t.note("expected: zero violations; observed maxima well below the packing bounds.");
    vec![t]
}

/// F5 (Lemma 3 + Theorem 4 / Figure 5): complementary-subset distance.
///
/// For an arbitrary (lowest-ID greedy) MIS the worst bipartition
/// distance is 2 **or 3**; for Algorithm I's level-ranked MIS it is
/// **exactly 2**.
pub fn run_subset_distance(scale: Scale) -> Vec<Table> {
    let (trials, n) = scale.pick((6, 60), (40, 250));
    let mut t = Table::new(
        "F5 · complementary-subset distance (Lemma 3 vs Theorem 4)",
        &["MIS flavor", "trials", "dist=2", "dist=3", "other", "claim"],
    );
    let mut arb = [0usize; 3]; // counts for 2, 3, other
    let mut lvl = [0usize; 3];
    for seed in 0..trials {
        let udg = connected_uniform_udg(n, crate::util::side_for_avg_degree(n, 10.0), seed);
        let g = udg.graph();
        let arbitrary = greedy_mis(g, RankingMode::StaticId);
        if arbitrary.len() >= 2 {
            match properties::max_complementary_subset_distance(g, &arbitrary) {
                Some(2) => arb[0] += 1,
                Some(3) => arb[1] += 1,
                _ => arb[2] += 1,
            }
        }
        let (_, ranked) = AlgorithmOne::new().construct_detailed(g);
        if ranked.len() >= 2 {
            match properties::max_complementary_subset_distance(g, &ranked) {
                Some(2) => lvl[0] += 1,
                Some(3) => lvl[1] += 1,
                _ => lvl[2] += 1,
            }
        }
    }
    t.row(vec![
        "arbitrary (lowest-ID)".into(),
        trials.to_string(),
        arb[0].to_string(),
        arb[1].to_string(),
        arb[2].to_string(),
        "∈ {2, 3} (Lemma 3)".into(),
    ]);
    t.row(vec![
        "level-ranked (Algorithm I)".into(),
        trials.to_string(),
        lvl[0].to_string(),
        lvl[1].to_string(),
        lvl[2].to_string(),
        "= 2 (Theorem 4)".into(),
    ]);
    t.note("expected: 'other' = 0 for both; level-ranked MIS never lands in the dist=3 column.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_no_violations_quick() {
        let t = &run_lemma1(Scale::Quick)[0];
        for row in &t.rows {
            assert_eq!(row[5], "0", "Lemma 1 violated in row {row:?}");
            assert!(row[3].parse::<usize>().unwrap() <= 5);
        }
    }

    #[test]
    fn lemma2_no_violations_quick() {
        let t = &run_lemma2(Scale::Quick)[0];
        for row in &t.rows {
            assert_eq!(row[5], "0", "Lemma 2 violated in row {row:?}");
        }
    }

    #[test]
    fn theorem4_row_has_no_dist3_cases() {
        let t = &run_subset_distance(Scale::Quick)[0];
        let lvl_row = &t.rows[1];
        assert_eq!(lvl_row[3], "0", "level-ranked MIS produced a 3-hop bipartition");
        assert_eq!(lvl_row[4], "0");
        let arb_row = &t.rows[0];
        assert_eq!(arb_row[4], "0", "arbitrary MIS outside {{2,3}}");
    }
}
