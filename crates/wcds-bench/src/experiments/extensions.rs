//! A2/T10 — extension experiments beyond the paper's explicit claims
//! (flagged as our additions in DESIGN.md):
//!
//! * **A2** — pruning ablation: the paper notes its size bound "may be
//!   improved by tighter analysis"; we measure how much a minimality
//!   pruning pass actually buys, and what it costs in dilation.
//! * **T10** — backbone robustness: articulation-point census of the
//!   spanner, quantifying single-node-failure fragility (the concern
//!   that motivates the maintenance machinery).

use crate::util::{connected_uniform_udg, f2, f3, side_for_avg_degree, Scale, Table};
use wcds_core::algo1::AlgorithmOne;
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::dilation::DilationReport;
use wcds_core::postprocess::{is_minimal, prune, PruneOrder};
use wcds_core::WcdsConstruction;
use wcds_graph::connectivity;

/// A2: pruning ablation — size saved vs dilation lost.
pub fn run_pruning(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(3, 12);
    let n = scale.pick(90, 250);
    let side = side_for_avg_degree(n, 12.0);
    let mut t = Table::new(
        "A2 · pruning ablation: minimal WCDS vs raw construction (extension)",
        &["algorithm", "raw |U|", "pruned |U|", "saved %", "raw max h'/h", "pruned max h'/h"],
    );
    for (name, algo) in [
        ("algorithm-1", &AlgorithmOne::new() as &dyn WcdsConstruction),
        ("algorithm-2", &AlgorithmTwo::new()),
    ] {
        let mut raw_sum = 0.0;
        let mut pruned_sum = 0.0;
        let mut raw_dil: f64 = 0.0;
        let mut pruned_dil: f64 = 0.0;
        for seed in 0..trials {
            let udg = connected_uniform_udg(n, side, seed as u64 + 61);
            let g = udg.graph();
            let raw = algo.construct(g);
            let pruned = prune(g, &raw.wcds, PruneOrder::BridgesFirst);
            debug_assert!(is_minimal(g, &pruned));
            raw_sum += raw.wcds.len() as f64;
            pruned_sum += pruned.len() as f64;
            let d_raw = DilationReport::measure(g, &raw.spanner, udg.points());
            let pruned_spanner = pruned.weakly_induced_subgraph(g);
            let d_pruned = DilationReport::measure(g, &pruned_spanner, udg.points());
            raw_dil = raw_dil.max(d_raw.topological_ratio());
            pruned_dil = pruned_dil.max(d_pruned.topological_ratio());
        }
        let k = trials as f64;
        t.row(vec![
            name.into(),
            f2(raw_sum / k),
            f2(pruned_sum / k),
            f2(100.0 * (1.0 - pruned_sum / raw_sum)),
            f3(raw_dil),
            f3(pruned_dil),
        ]);
    }
    t.note("expected: pruning shrinks Algorithm II's set substantially (bridges are often");
    t.note("redundant) at the cost of a higher worst-case hop dilation — the guarantee the");
    t.note("bridges existed to provide. Algorithm I's MIS prunes less (it is already lean).");
    vec![t]
}

/// T10: backbone robustness — articulation points of the spanner.
pub fn run_robustness(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(3, 10);
    let n = scale.pick(120, 400);
    let side = side_for_avg_degree(n, 12.0);
    let mut t = Table::new(
        "T10 · single-failure fragility of G vs the spanner (extension)",
        &["graph", "mean cut vertices", "mean bridges", "cut vertices that are dominators %"],
    );
    let mut g_cuts = 0.0;
    let mut g_bridges = 0.0;
    let mut s_cuts = 0.0;
    let mut s_bridges = 0.0;
    let mut dom_cut_frac = 0.0;
    for seed in 0..trials {
        let udg = connected_uniform_udg(n, side, seed as u64 + 71);
        let g = udg.graph();
        let result = AlgorithmTwo::new().construct(g);
        g_cuts += connectivity::articulation_points(g).len() as f64;
        g_bridges += connectivity::bridges(g).len() as f64;
        let span_cuts = connectivity::articulation_points(&result.spanner);
        s_cuts += span_cuts.len() as f64;
        s_bridges += connectivity::bridges(&result.spanner).len() as f64;
        if !span_cuts.is_empty() {
            let doms = span_cuts.iter().filter(|&&u| result.wcds.contains(u)).count();
            dom_cut_frac += 100.0 * doms as f64 / span_cuts.len() as f64;
        } else {
            dom_cut_frac += 100.0;
        }
    }
    let k = trials as f64;
    t.row(vec!["G (full UDG)".into(), f2(g_cuts / k), f2(g_bridges / k), "—".into()]);
    t.row(vec![
        "G' (algo-2 spanner)".into(),
        f2(s_cuts / k),
        f2(s_bridges / k),
        f2(dom_cut_frac / k),
    ]);
    t.note("expected: the spanner concentrates connectivity on far fewer nodes, so it has");
    t.note("many more cut vertices than G — and they are overwhelmingly dominators, which is");
    t.note("why the maintenance layer (T9) exists.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_never_grows_sets() {
        let t = &run_pruning(Scale::Quick)[0];
        for row in &t.rows {
            let raw: f64 = row[1].parse().unwrap();
            let pruned: f64 = row[2].parse().unwrap();
            assert!(pruned <= raw + 1e-9, "{row:?}");
            assert!(row[3].parse::<f64>().unwrap() >= 0.0);
        }
    }

    #[test]
    fn spanner_is_more_fragile_than_graph() {
        let t = &run_robustness(Scale::Quick)[0];
        let g_cuts: f64 = t.rows[0][1].parse().unwrap();
        let s_cuts: f64 = t.rows[1][1].parse().unwrap();
        assert!(s_cuts >= g_cuts, "spanner should not be more robust than G");
    }
}
