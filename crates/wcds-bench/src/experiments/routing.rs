//! T7/T8 — the backbone application: clusterhead unicast stretch and
//! broadcast savings (§1, §4.2).

use crate::util::{connected_uniform_udg, f2, side_for_avg_degree, Scale, Table};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::WcdsConstruction;
use wcds_routing::{BackboneRouter, BroadcastPlan};

/// T7: unicast stretch over the spanner and per-dominator routing
/// state.
pub fn run_unicast(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[80, 160][..], &[150, 300, 600][..]);
    let pairs = scale.pick(60, 400);
    let mut t = Table::new(
        "T7 · clusterhead unicast over the spanner (§4.2)",
        &["n", "mean stretch", "p95 stretch", "max stretch", "dominators", "state/dominator"],
    );
    for &n in sizes {
        let side = side_for_avg_degree(n, 12.0);
        let udg = connected_uniform_udg(n, side, 17);
        let g = udg.graph();
        let result = AlgorithmTwo::new().construct(g);
        let router = BackboneRouter::build(g, &result.wcds);
        let mut stretches = Vec::new();
        let mut rng_state = 12345u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize
        };
        while stretches.len() < pairs {
            let s = next() % n;
            let t = next() % n;
            if s == t || g.has_edge(s, t) {
                continue;
            }
            if let Some(x) = router.stretch(g, s, t) {
                stretches.push(x);
            }
        }
        stretches.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = stretches.iter().sum::<f64>() / stretches.len() as f64;
        let p95 = stretches[(stretches.len() * 95) / 100 - 1];
        let max = *stretches.last().expect("non-empty");
        let heads = result.wcds.mis_dominators().len();
        t.row(vec![
            n.to_string(),
            f2(mean),
            f2(p95),
            f2(max),
            heads.to_string(),
            f2(router.total_state() as f64 / heads as f64),
        ]);
    }
    t.note("expected: mean stretch modest (≈1.2–2) and max below the 3h+5 clusterhead bound;");
    t.note("routing state lives only at dominators and scales with the backbone, not with n·n.");
    vec![t]
}

/// T7b: the *fully distributed* routing stack — registration + LSA
/// flooding costs and delivered-packet stretch, everything measured
/// from protocol runs rather than centralized computation.
pub fn run_distributed_unicast(scale: Scale) -> Vec<Table> {
    use wcds_core::algo2;
    use wcds_graph::traversal;
    use wcds_routing::distributed::RoutingStack;
    use wcds_sim::Schedule;

    let sizes: &[usize] = scale.pick(&[60, 120][..], &[125, 250, 500][..]);
    let flows = scale.pick(20, 100);
    let mut t = Table::new(
        "T7b · distributed routing stack (§4.2 protocols end-to-end)",
        &[
            "n",
            "REGISTER msgs",
            "LSA msgs",
            "LSA ≤ n·|S|?",
            "delivered",
            "mean stretch",
            "max stretch",
        ],
    );
    for &n in sizes {
        let side = side_for_avg_degree(n, 12.0);
        let udg = connected_uniform_udg(n, side, 43);
        let g = udg.graph();
        let run = algo2::distributed::run_synchronous(g);
        let heads = run.result.wcds.mis_dominators().len() as u64;
        let mut stack = RoutingStack::build(g, &run, Schedule::synchronous);
        let register = stack.setup_reports[0].messages.total();
        let lsa = stack.setup_reports[1].messages.total();

        let mut rng = 99u64;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng >> 33) as usize
        };
        let mut pairs = Vec::new();
        while pairs.len() < flows {
            let s = next() % n;
            let d = next() % n;
            if s != d {
                pairs.push((s, d));
            }
        }
        let (deliveries, _) = stack.send_packets(&pairs, Schedule::synchronous());
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        for d in &deliveries {
            let h = traversal::hop_distance(g, d.src, d.dst).expect("connected") as f64;
            let st = d.hops as f64 / h;
            sum += st;
            max = max.max(st);
        }
        t.row(vec![
            n.to_string(),
            register.to_string(),
            lsa.to_string(),
            (lsa <= n as u64 * heads).to_string(),
            format!("{}/{}", deliveries.len(), pairs.len()),
            f2(sum / deliveries.len() as f64),
            f2(max),
        ]);
    }
    t.note("expected: every packet delivered; one REGISTER per host; LSA flood within n·|S|;");
    t.note("stretch close to the centralized router's (T7) — the tables really are buildable");
    t.note("from the protocol's own 2HopDomList/3HopDomList state.");
    vec![t]
}

/// T8: broadcast transmissions — backbone vs blind flooding.
pub fn run_broadcast(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[100, 200][..], &[200, 400, 800, 1600][..]);
    let side = 7.0; // fixed area: density rises with n, savings grow
    let mut t = Table::new(
        "T8 · broadcast cost: backbone forwarding vs blind flooding (§1)",
        &["n", "flood tx", "backbone tx", "forwarder set", "savings %", "coverage"],
    );
    for &n in sizes {
        let udg = connected_uniform_udg(n, side, 29);
        let g = udg.graph();
        let result = AlgorithmTwo::new().construct(g);
        let plan = BroadcastPlan::for_wcds(g, &result.wcds);
        let backbone = plan.simulate(g, 0);
        let flood = BroadcastPlan::flooding(g).simulate(g, 0);
        t.row(vec![
            n.to_string(),
            flood.transmissions.to_string(),
            backbone.transmissions.to_string(),
            plan.forwarder_count().to_string(),
            f2(100.0 * (1.0 - backbone.transmissions as f64 / flood.transmissions as f64)),
            backbone.full_coverage.to_string(),
        ]);
    }
    t.note("expected: full coverage always; savings grow with density (the backbone size is");
    t.note("area-bound while flooding pays one transmission per node).");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_stretch_is_bounded() {
        let t = &run_unicast(Scale::Quick)[0];
        for row in &t.rows {
            let max: f64 = row[3].parse().unwrap();
            assert!(max <= 5.5, "stretch exceeded clusterhead bound: {row:?}");
            assert!(row[1].parse::<f64>().unwrap() >= 1.0);
        }
    }

    #[test]
    fn distributed_stack_delivers_everything() {
        let t = &run_distributed_unicast(Scale::Quick)[0];
        for row in &t.rows {
            let parts: Vec<&str> = row[4].split('/').collect();
            assert_eq!(parts[0], parts[1], "lost packets: {row:?}");
            assert_eq!(row[3], "true", "LSA bound: {row:?}");
            assert!(row[6].parse::<f64>().unwrap() <= 5.5, "stretch: {row:?}");
        }
    }

    #[test]
    fn broadcast_always_covers_and_saves() {
        let t = &run_broadcast(Scale::Quick)[0];
        for row in &t.rows {
            assert_eq!(row[5], "true", "coverage failed: {row:?}");
            assert!(row[4].parse::<f64>().unwrap() > 0.0, "no savings: {row:?}");
        }
    }
}
