//! Experiment harness regenerating every figure and quantitative claim
//! of the ICDCS 2003 WCDS paper.
//!
//! The paper is pre-"artifact evaluation": it has no measured tables,
//! only illustrative figures and proven bounds. "Reproducing the
//! evaluation" therefore means regenerating each figure as a checkable
//! artifact and measuring each bound (approximation ratios, spanner
//! sparseness, dilation, message/time complexity) on synthetic
//! deployments — the substitution policy recorded in `DESIGN.md`.
//!
//! Each experiment lives in [`experiments`] as a function returning
//! printable [`util::Table`]s; the `expt_*` binaries in `src/bin` are
//! thin wrappers, and `expt_all` prints the whole evaluation. Every
//! experiment accepts a [`util::Scale`] so integration tests can
//! smoke-run the full suite in seconds while the binaries default to
//! paper-scale sweeps.

pub mod experiments;
pub mod perf;
pub mod util;
