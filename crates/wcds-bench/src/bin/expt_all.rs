//! Prints the entire reproduced evaluation (DESIGN.md §5 order).
//! Pass `--quick` for a fast smoke run.

use wcds_bench::experiments;
use wcds_bench::util::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("# WCDS paper evaluation — full reproduction ({scale:?} scale)\n");
    for table in experiments::run_all(scale) {
        println!("{table}");
    }
}
