//! All-sources dilation benchmark → `BENCH_dilation.json`.
//!
//! One fixed-seed connected uniform UDG (n = 2000 at full scale, the
//! acceptance instance; `--quick` shrinks it for CI smoke runs), the
//! Algorithm II spanner on it, then three sweeps of the full dilation
//! measurement:
//!
//! * `dilation_legacy` — the pre-CSR engine (`Vec<Vec<_>>` adjacency,
//!   per-source allocation, layer sort), the speedup denominator;
//! * `dilation_csr_serial` — the CSR + scratch engine on one thread;
//! * `dilation_csr_parallel` — the same engine on
//!   [`wcds_graph::parallel::threads`] workers (set `WCDS_THREADS` with
//!   the `rayon` feature to pin the count).
//!
//! The parallel report is asserted **equal** to the serial one
//! (witnesses included), and both must agree with the legacy ratios.

use wcds_bench::perf::{legacy_dilation_sweep, time_ms, to_vec_adjacency, write_bench_json, BenchRow};
use wcds_bench::util::{connected_uniform_udg, side_for_avg_degree, Scale};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::dilation::DilationReport;
use wcds_core::WcdsConstruction;
use wcds_graph::parallel;

const SEED: u64 = 42;

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(300, 2000);
    let side = side_for_avg_degree(n, 11.0);
    let udg = connected_uniform_udg(n, side, SEED);
    let g = udg.graph();
    let m = g.edge_count();
    let spanner = AlgorithmTwo::new().construct(g).spanner;
    println!("instance: n={n} m={m} spanner_m={}", spanner.edge_count());

    let adj_g = to_vec_adjacency(g);
    let adj_s = to_vec_adjacency(&spanner);
    let (legacy_ms, (lt, lg, lts, lgs)) =
        time_ms(|| legacy_dilation_sweep(&adj_g, &adj_s, udg.points()));

    let (serial_ms, serial) =
        time_ms(|| DilationReport::measure_with_threads(g, &spanner, udg.points(), 1));

    let nthreads = parallel::threads();
    let (par_ms, par) =
        time_ms(|| DilationReport::measure_with_threads(g, &spanner, udg.points(), nthreads));

    assert_eq!(par, serial, "parallel report must be identical to serial");
    assert_eq!(serial.topological_ratio(), lt, "topological ratio diverged from legacy");
    assert_eq!(serial.geometric_ratio(), lg, "geometric ratio diverged from legacy");
    assert_eq!(serial.topo_bound_slack, lts, "topological slack diverged from legacy");
    assert_eq!(serial.geo_bound_slack, lgs, "geometric slack diverged from legacy");

    let rows = vec![
        BenchRow::new("dilation_legacy", n, m, 1, legacy_ms, n),
        BenchRow::new("dilation_csr_serial", n, m, 1, serial_ms, n),
        BenchRow::new("dilation_csr_parallel", n, m, nthreads, par_ms, n),
    ];
    let checks = vec![
        ("parallel_identical_to_serial".to_string(), "true".to_string()),
        ("agrees_with_legacy".to_string(), "true".to_string()),
        (
            "speedup_serial_vs_legacy".to_string(),
            format!("{:.2}", legacy_ms / serial_ms.max(1e-9)),
        ),
        (
            "speedup_parallel_vs_legacy".to_string(),
            format!("{:.2}", legacy_ms / par_ms.max(1e-9)),
        ),
        ("topological_ratio".to_string(), format!("{:.4}", serial.topological_ratio())),
        ("geometric_ratio".to_string(), format!("{:.4}", serial.geometric_ratio())),
    ];

    write_bench_json("BENCH_dilation.json", "dilation", &rows, &checks);
    for r in &rows {
        println!(
            "{:<22} threads={} {:>9.2} ms  {:>9.1} sources/s",
            r.name, r.threads, r.wall_ms, r.throughput
        );
    }
    println!(
        "speedup vs legacy: serial {:.2}x, parallel {:.2}x ({} threads)",
        legacy_ms / serial_ms.max(1e-9),
        legacy_ms / par_ms.max(1e-9),
        nthreads
    );
    println!("wrote BENCH_dilation.json");
}
