//! Experiment binary; see DESIGN.md §5. Pass `--quick` for a smoke run.

use wcds_bench::experiments;
use wcds_bench::util::Scale;

fn main() {
    let scale = Scale::from_args();
    for table in experiments::routing::run_unicast(scale) {
        println!("{table}");
    }
}
