//! Service load generator → `BENCH_service.json`.
//!
//! Runs an in-process `wcds-service` server on a loopback port and
//! hammers it with concurrent client threads over real TCP, measuring
//! per-operation latency (p50/p95/p99), aggregate throughput, and the
//! topology store's cache hit rate under two workload mixes:
//!
//! * **read-heavy** — 1 drift move per 32 requests (a node jitters
//!   around its deployment position, the patchable-repair common
//!   case), shipped as depth-[`PIPELINE_DEPTH`] pipelined bursts
//!   (write the whole burst, then drain the responses): the epoch
//!   cache and the mutation path's bundle patching should absorb
//!   almost everything, and the event loop should answer from the
//!   lock-free snapshot without a thread handoff. Per-request latency
//!   is the burst round-trip divided by its depth — the closed-loop
//!   pipelined convention;
//! * **mutation-heavy** — 1 drift tick per 4 requests, shipped as a
//!   [`Mutation::Move`] × [`BATCH_MOVES`] `MutateBatch` frame: the
//!   region-lease scheduler coalesces each tick into per-wave repairs,
//!   and every applied move counts as one operation.
//!
//! The wall clock starts at a barrier *after* every load client has
//! connected — connection setup is reported separately
//! (`*_connect_ms`) instead of polluting the latency rows and the
//! throughput denominator. Mutations are joins/moves only (never
//! leaves), so route endpoints sampled from the initial node range
//! stay valid throughout. Batch latencies subtract the lease-wait time
//! the server reports — queue time is accounted separately
//! (`lease_wait_ms` check) so the p99 measures service time, not
//! contention backlog. The mutation-heavy mix is release-gated on the
//! serial-replay oracle: the final export must be byte-identical to
//! replaying the batch log, sorted by commit epoch, one move at a
//! time. Pass `--quick` for the CI smoke size.

use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};
use wcds_bench::perf::{write_bench_json, BenchRow};
use wcds_bench::util::{connected_uniform_udg, side_for_avg_degree, Scale};
use wcds_core::maintenance::MaintainedWcds;
use wcds_geom::Point;
use wcds_graph::io;
use wcds_rng::{ChaCha12Rng, Rng};
use wcds_service::protocol::{Request, Response};
use wcds_service::{Client, Mutation, Server, ServerConfig, Store, TopologyStats};

const SEED: u64 = 42;
/// Moves per drift-tick `MutateBatch` frame in the mutation-heavy mix.
const BATCH_MOVES: usize = 16;
/// Requests per pipelined burst in the read-heavy mix.
const PIPELINE_DEPTH: usize = 32;
/// PR-7 single-mutation baselines the lease scheduler must beat
/// (BENCH_service.json at the 8-worker full scale).
const BASELINE_MUTATION_HEAVY_OPS_PER_S: f64 = 2871.9;
const BASELINE_MUTATION_HEAVY_P99_US: f64 = 15_796.2;
/// PR-9 worker-pool read-heavy throughput (BENCH_service.json before
/// the event loop); the readiness engine must clear 4× this floor.
const BASELINE_READ_HEAVY_REQ_PER_S: f64 = 23_741.8;
/// Read-heavy tail ceiling under the event loop (µs, amortized).
const FLOOR_READ_HEAVY_P99_US: f64 = 1_000.0;
/// PR-8 mutation-heavy throughput the event loop must not regress.
const FLOOR_MUTATION_HEAVY_OPS_PER_S: f64 = 19_900.0;

struct MixResult {
    wall_ms: f64,
    /// Per-operation service latencies (lease wait already subtracted
    /// from batch frames; pipelined bursts amortized over their depth).
    latencies_us: Vec<f64>,
    /// Logical operations: reads + applied mutations.
    ops: usize,
    mutations: u64,
    lease_wait_ms: f64,
    /// Slowest single client connect (excluded from the wall clock).
    connect_ms: f64,
    /// Readiness-engine syscalls issued during this mix.
    syscalls_delta: u64,
    hit_rate: f64,
    stats: TopologyStats,
    /// `(first epoch, moves)` per batch frame — the replay log.
    batch_log: Vec<(u64, Vec<Mutation>)>,
    final_export: String,
}

/// One burst of the read-heavy mix: request `i + t ≡ 0 (mod period)`
/// is a single drift move (the node jitters around its deployment
/// position — the patchable-repair common case, so the snapshot stays
/// hot), one in eight of the rest is a stats probe, everything else
/// routes between random endpoints.
#[allow(clippy::too_many_arguments)] // single call site, positional config
fn read_burst(
    rng: &mut ChaCha12Rng,
    mix: &str,
    pts: &[Point],
    side: f64,
    n: usize,
    t: usize,
    first: usize,
    depth: usize,
    mutation_period: usize,
) -> Vec<Request> {
    (first..first + depth)
        .map(|i| {
            if (i + t) % mutation_period == 0 {
                let node = rng.gen_range(0..n);
                let jx = (rng.gen::<f64>() - 0.5) * 0.5;
                let jy = (rng.gen::<f64>() - 0.5) * 0.5;
                let home = pts[node];
                let mutation = Mutation::Move {
                    node,
                    x: (home.x + jx).clamp(0.0, side),
                    y: (home.y + jy).clamp(0.0, side),
                };
                Request::Mutate { name: mix.to_string(), mutation }
            } else if rng.gen_range(0..8usize) == 0 {
                Request::Stats { name: mix.to_string() }
            } else {
                Request::Route {
                    name: mix.to_string(),
                    from: rng.gen_range(0..n),
                    to: rng.gen_range(0..n),
                }
            }
        })
        .collect()
}

/// Runs one workload mix against a fresh topology on `addr`:
/// `threads` clients, each issuing `ops` requests, mutating once every
/// `mutation_period` requests — one mutation per slot when
/// `batch_moves` is 0, a `MutateBatch` drift tick otherwise. A
/// non-zero `pipeline_depth` ships the read mix as pipelined bursts.
#[allow(clippy::too_many_arguments)] // single call site, positional config
fn run_mix(
    addr: std::net::SocketAddr,
    mix: &str,
    payload: &str,
    side: f64,
    n: usize,
    threads: usize,
    ops: usize,
    mutation_period: usize,
    batch_moves: usize,
    pipeline_depth: usize,
) -> MixResult {
    let mut admin = Client::connect(addr).expect("admin connect");
    admin.create(mix, payload).expect("create topology");
    // warm the cache so the steady state, not the first build, is measured
    admin.construct(mix).expect("initial construct");
    let syscalls_before = admin.stats(mix).expect("baseline stats").syscalls;
    // deployment positions anchor the read mix's drift moves
    let pts = io::from_text(payload).expect("payload parses").points.expect("mobile payload");

    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(threads * ops));
    let batch_log: Mutex<Vec<(u64, Vec<Mutation>)>> = Mutex::new(Vec::new());
    let mutations = std::sync::atomic::AtomicU64::new(0);
    let lease_wait_us = std::sync::atomic::AtomicU64::new(0);
    let logical_ops = std::sync::atomic::AtomicU64::new(0);
    let connect_us = std::sync::atomic::AtomicU64::new(0);
    // every client connects before the clock starts: connection setup
    // is reported on its own, not smeared into latency or throughput
    let ready = Barrier::new(threads + 1);
    let mut wall_ms = 0.0;
    std::thread::scope(|scope| {
        let mut load_threads = Vec::with_capacity(threads);
        for t in 0..threads {
            let latencies = &latencies;
            let batch_log = &batch_log;
            let mutations = &mutations;
            let lease_wait_us = &lease_wait_us;
            let logical_ops = &logical_ops;
            let connect_us = &connect_us;
            let ready = &ready;
            let pts = &pts;
            load_threads.push(scope.spawn(move || {
                let mut rng = ChaCha12Rng::seed_from_u64(SEED + 7 * t as u64);
                let dial = Instant::now();
                let mut c = Client::connect_with_timeout(addr, Duration::from_secs(60))
                    .expect("load client connect");
                let dialed = dial.elapsed().as_micros() as u64;
                connect_us.fetch_max(dialed, std::sync::atomic::Ordering::Relaxed);
                ready.wait();
                let mut local = Vec::with_capacity(ops);
                let mut local_ops = 0u64;
                let mut local_wait = 0u64;
                if pipeline_depth > 0 {
                    // pipelined read mix: write the burst, drain it,
                    // amortize the round trip over its depth
                    for b in 0..ops / pipeline_depth {
                        let burst = read_burst(
                            &mut rng,
                            mix,
                            pts,
                            side,
                            n,
                            t,
                            b * pipeline_depth,
                            pipeline_depth,
                            mutation_period,
                        );
                        let tick = Instant::now();
                        let responses = c.pipeline(&burst).expect("pipelined burst");
                        let per_req =
                            tick.elapsed().as_secs_f64() * 1e6 / pipeline_depth as f64;
                        for resp in &responses {
                            if matches!(resp, Response::Mutated { .. }) {
                                mutations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            local.push(per_req);
                        }
                        local_ops += responses.len() as u64;
                    }
                    latencies.lock().unwrap().extend(local);
                    logical_ops.fetch_add(local_ops, std::sync::atomic::Ordering::Relaxed);
                    return;
                }
                for i in 0..ops {
                    if (i + t) % mutation_period == 0 {
                        if batch_moves > 0 {
                            // drift tick: one frame, batch_moves moves
                            let tick_moves: Vec<Mutation> = (0..batch_moves)
                                .map(|_| Mutation::Move {
                                    node: rng.gen_range(0..n),
                                    x: rng.gen::<f64>() * side,
                                    y: rng.gen::<f64>() * side,
                                })
                                .collect();
                            let tick = Instant::now();
                            let out = c.mutate_batch(mix, &tick_moves).expect("mutate batch");
                            let total_us = tick.elapsed().as_secs_f64() * 1e6;
                            assert_eq!(out.applied as usize, batch_moves);
                            // queue time is contention accounting, not
                            // service time — measure the repair itself
                            local.push((total_us - out.lease_wait_us as f64).max(0.0));
                            local_wait += out.lease_wait_us;
                            local_ops += out.applied;
                            mutations
                                .fetch_add(out.applied, std::sync::atomic::Ordering::Relaxed);
                            batch_log
                                .lock()
                                .unwrap()
                                .push((out.epoch + 1 - out.applied, tick_moves));
                            continue;
                        }
                        let mutation = if rng.gen_range(0..2usize) == 0 {
                            Mutation::Join {
                                x: rng.gen::<f64>() * side,
                                y: rng.gen::<f64>() * side,
                            }
                        } else {
                            Mutation::Move {
                                node: rng.gen_range(0..n),
                                x: rng.gen::<f64>() * side,
                                y: rng.gen::<f64>() * side,
                            }
                        };
                        let tick = Instant::now();
                        c.mutate(mix, mutation).expect("mutate");
                        local.push(tick.elapsed().as_secs_f64() * 1e6);
                        local_ops += 1;
                        mutations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    } else {
                        let tick = Instant::now();
                        match rng.gen_range(0..8usize) {
                            0 => {
                                c.stats(mix).expect("stats");
                            }
                            _ => {
                                let s = rng.gen_range(0..n);
                                let d = rng.gen_range(0..n);
                                // Unroutable is impossible here: the
                                // deployment is connected and joins/moves
                                // into the region keep route() total only
                                // up to pathological moves, so tolerate it
                                let _ = c.route(mix, s, d);
                            }
                        }
                        local.push(tick.elapsed().as_secs_f64() * 1e6);
                        local_ops += 1;
                    }
                }
                latencies.lock().unwrap().extend(local);
                logical_ops.fetch_add(local_ops, std::sync::atomic::Ordering::Relaxed);
                lease_wait_us.fetch_add(local_wait, std::sync::atomic::Ordering::Relaxed);
            }));
        }
        ready.wait();
        let start = Instant::now();
        for h in load_threads {
            h.join().expect("load thread");
        }
        wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    });

    let stats = admin.stats(mix).expect("final stats");
    let final_export = admin.export(mix).expect("final export");
    let queries = stats.cache_hits + stats.cache_misses;
    admin.drop_topology(mix).expect("drop topology");
    MixResult {
        wall_ms,
        latencies_us: latencies.into_inner().unwrap(),
        ops: logical_ops.into_inner() as usize,
        mutations: mutations.into_inner(),
        lease_wait_ms: lease_wait_us.into_inner() as f64 / 1000.0,
        connect_ms: connect_us.into_inner() as f64 / 1000.0,
        syscalls_delta: stats.syscalls.saturating_sub(syscalls_before),
        hit_rate: if queries > 0 { stats.cache_hits as f64 / queries as f64 } else { 0.0 },
        stats,
        batch_log: batch_log.into_inner().unwrap(),
        final_export,
    }
}

/// The serial-replay oracle: sort the batch log by first commit epoch,
/// apply every move one at a time, and demand byte identity with the
/// server's final export.
fn assert_serial_replay(payload: &str, result: &MixResult) {
    let mut log = result.batch_log.clone();
    log.sort_by_key(|&(first, _)| first);
    let mut expect_next = 1u64;
    for (first, moves) in &log {
        assert_eq!(
            *first, expect_next,
            "batch epoch ranges must tile 1..=mutations with no gap or overlap"
        );
        expect_next += moves.len() as u64;
    }
    assert_eq!(expect_next - 1, result.mutations, "log covers every applied mutation");

    let doc = io::from_text(payload).expect("bench payload parses");
    let mut replay =
        MaintainedWcds::new(doc.points.expect("mobile payload"), wcds_service::store::UDG_RADIUS);
    for (_, moves) in &log {
        for m in moves {
            match *m {
                Mutation::Move { node, x, y } => {
                    replay.apply_motion(&[(node, Point::new(x, y))]);
                }
                _ => unreachable!("mutation-heavy mix ships moves only"),
            }
        }
    }
    assert_eq!(
        result.final_export,
        io::to_text(replay.graph(), Some(replay.points())),
        "concurrent batch application diverged from serial replay in commit order"
    );
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(80, 300);
    let threads = scale.pick(4, 8);
    // divisible by PIPELINE_DEPTH so bursts tile the op budget exactly
    let ops = scale.pick(96, 800);
    let side = side_for_avg_degree(n, 10.0);

    let udg = connected_uniform_udg(n, side, SEED);
    let payload = io::to_text(udg.graph(), Some(udg.points()));
    let edges = udg.graph().edge_count();

    // executors > client threads + the admin connection, so offloaded
    // mutations never serialize the load generator
    let config = ServerConfig { workers: threads + 2, ..ServerConfig::default() };
    let handle =
        Server::bind("127.0.0.1:0", Store::new(), config).expect("bind loopback server");
    let addr = handle.local_addr();

    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for (mix, mutation_period, batch_moves, pipeline_depth) in [
        ("read_heavy", 32usize, 0usize, PIPELINE_DEPTH),
        ("mutation_heavy", 4, BATCH_MOVES, 0),
    ] {
        let result = run_mix(
            addr,
            mix,
            &payload,
            side,
            n,
            threads,
            ops,
            mutation_period,
            batch_moves,
            pipeline_depth,
        );
        let requests = result.latencies_us.len();
        assert_eq!(requests, threads * ops, "{mix}: lost requests");
        assert_eq!(
            result.stats.epoch, result.mutations,
            "{mix}: epoch must count exactly the applied mutations"
        );
        if batch_moves > 0 {
            assert_serial_replay(&payload, &result);
            assert_eq!(
                result.stats.batched_mutations, result.mutations,
                "{mix}: every mutation arrived batched"
            );
        }

        let mut sorted = result.latencies_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        rows.push(BenchRow::new(mix, n, edges, threads, result.wall_ms, result.ops));
        checks.push((format!("{mix}_p50_us"), format!("{:.1}", percentile(&sorted, 0.50))));
        checks.push((format!("{mix}_p95_us"), format!("{:.1}", percentile(&sorted, 0.95))));
        checks.push((format!("{mix}_p99_us"), format!("{:.1}", percentile(&sorted, 0.99))));
        checks.push((format!("{mix}_cache_hit_rate"), format!("{:.4}", result.hit_rate)));
        checks.push((format!("{mix}_mutations"), format!("{}", result.mutations)));
        checks.push((format!("{mix}_lease_wait_ms"), format!("{:.1}", result.lease_wait_ms)));
        checks.push((format!("{mix}_connect_ms"), format!("{:.2}", result.connect_ms)));
        checks.push((
            format!("{mix}_syscalls_per_req"),
            format!("{:.2}", result.syscalls_delta as f64 / requests as f64),
        ));
        checks.push((
            format!("{mix}_snapshot_reads"),
            format!("{}", result.stats.snapshot_reads),
        ));
        checks.push((
            format!("{mix}_pipeline_depth_max"),
            format!("{}", result.stats.pipeline_depth_max),
        ));
        checks.push((
            format!("{mix}_lease_waits"),
            format!("{}", result.stats.lease_waits),
        ));
        checks.push((
            format!("{mix}_lease_conflicts"),
            format!("{}", result.stats.lease_conflicts),
        ));
        checks.push((
            format!("{mix}_batched_mutations"),
            format!("{}", result.stats.batched_mutations),
        ));
        checks.push((
            format!("{mix}_concurrent_repairs_max"),
            format!("{}", result.stats.concurrent_repairs_max),
        ));

        if scale == Scale::Full && mix == "read_heavy" {
            let row = rows.last().expect("row just pushed");
            assert!(
                row.throughput >= 4.0 * BASELINE_READ_HEAVY_REQ_PER_S,
                "read_heavy {:.1} req/s is below 4× the worker-pool \
                 baseline ({BASELINE_READ_HEAVY_REQ_PER_S} req/s)",
                row.throughput
            );
            let p99 = percentile(&sorted, 0.99);
            assert!(
                p99 < FLOOR_READ_HEAVY_P99_US,
                "read_heavy p99 {p99:.1} µs breaches the event-loop \
                 tail ceiling ({FLOOR_READ_HEAVY_P99_US} µs)"
            );
        }
        if scale == Scale::Full && mix == "mutation_heavy" {
            let row = rows.last().expect("row just pushed");
            assert!(
                row.throughput >= 4.0 * BASELINE_MUTATION_HEAVY_OPS_PER_S,
                "mutation_heavy {:.1} ops/s is below 4× the single-mutation \
                 baseline ({BASELINE_MUTATION_HEAVY_OPS_PER_S} req/s)",
                row.throughput
            );
            assert!(
                row.throughput >= FLOOR_MUTATION_HEAVY_OPS_PER_S,
                "mutation_heavy {:.1} ops/s regressed past the PR-8 lease \
                 floor ({FLOOR_MUTATION_HEAVY_OPS_PER_S} ops/s)",
                row.throughput
            );
            let p99 = percentile(&sorted, 0.99);
            assert!(
                p99 < BASELINE_MUTATION_HEAVY_P99_US,
                "mutation_heavy p99 service time {p99:.1} µs regressed past the \
                 PR-7 tail ({BASELINE_MUTATION_HEAVY_P99_US} µs)"
            );
        }
    }
    checks.push(("epochs_match_mutations".to_string(), "true".to_string()));
    checks.push(("batch_replay_matches_serial".to_string(), "true".to_string()));

    let mut shutdown = Client::connect(addr).expect("shutdown connect");
    shutdown.shutdown_server().expect("graceful shutdown");
    let served = handle.join();
    checks.push(("requests_served".to_string(), format!("{served}")));

    write_bench_json("BENCH_service.json", "service", &rows, &checks);
    for r in &rows {
        println!(
            "{:<16} n={:<4} threads={:<2} {:>9.1} ms  {:>10.0} ops/s",
            r.name, r.n, r.threads, r.wall_ms, r.throughput
        );
    }
    for (k, v) in &checks {
        println!("  {k} = {v}");
    }
    println!("wrote BENCH_service.json");
}

