//! Service load generator → `BENCH_service.json`.
//!
//! Runs an in-process `wcds-service` server on a loopback port and
//! hammers it with concurrent client threads over real TCP, measuring
//! per-request latency (p50/p95/p99), aggregate throughput, and the
//! topology store's cache hit rate under two workload mixes:
//!
//! * **read-heavy** — 1 mutation per 32 requests: the epoch cache
//!   should absorb almost everything;
//! * **mutation-heavy** — 1 mutation per 4 requests: every mutation
//!   invalidates the artifact bundle, so rebuilds dominate.
//!
//! Mutations are joins/moves only (never leaves), so route endpoints
//! sampled from the initial node range stay valid throughout. Pass
//! `--quick` for the CI smoke size.

use std::sync::Mutex;
use std::time::{Duration, Instant};
use wcds_bench::perf::{write_bench_json, BenchRow};
use wcds_bench::util::{connected_uniform_udg, side_for_avg_degree, Scale};
use wcds_graph::io;
use wcds_rng::{ChaCha12Rng, Rng};
use wcds_service::{Client, Mutation, Server, ServerConfig, Store};

const SEED: u64 = 42;

struct MixResult {
    wall_ms: f64,
    latencies_us: Vec<f64>,
    mutations: u64,
    hit_rate: f64,
    final_epoch: u64,
}

/// Runs one workload mix against a fresh topology on `addr`:
/// `threads` clients, each issuing `ops` requests, mutating once every
/// `mutation_period` requests.
#[allow(clippy::too_many_arguments)] // single call site, positional config
fn run_mix(
    addr: std::net::SocketAddr,
    mix: &str,
    payload: &str,
    side: f64,
    n: usize,
    threads: usize,
    ops: usize,
    mutation_period: usize,
) -> MixResult {
    let mut admin = Client::connect(addr).expect("admin connect");
    admin.create(mix, payload).expect("create topology");
    // warm the cache so the steady state, not the first build, is measured
    admin.construct(mix).expect("initial construct");

    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(threads * ops));
    let mutations = std::sync::atomic::AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let latencies = &latencies;
            let mutations = &mutations;
            scope.spawn(move || {
                let mut rng = ChaCha12Rng::seed_from_u64(SEED + 7 * t as u64);
                let mut c = Client::connect_with_timeout(addr, Duration::from_secs(60))
                    .expect("load client connect");
                let mut local = Vec::with_capacity(ops);
                for i in 0..ops {
                    let tick = Instant::now();
                    if (i + t) % mutation_period == 0 {
                        let mutation = if rng.gen_range(0..2usize) == 0 {
                            Mutation::Join {
                                x: rng.gen::<f64>() * side,
                                y: rng.gen::<f64>() * side,
                            }
                        } else {
                            Mutation::Move {
                                node: rng.gen_range(0..n),
                                x: rng.gen::<f64>() * side,
                                y: rng.gen::<f64>() * side,
                            }
                        };
                        c.mutate(mix, mutation).expect("mutate");
                        mutations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    } else {
                        match rng.gen_range(0..8usize) {
                            0 => {
                                c.stats(mix).expect("stats");
                            }
                            _ => {
                                let s = rng.gen_range(0..n);
                                let d = rng.gen_range(0..n);
                                // Unroutable is impossible here: the
                                // deployment is connected and joins/moves
                                // into the region keep route() total only
                                // up to pathological moves, so tolerate it
                                let _ = c.route(mix, s, d);
                            }
                        }
                    }
                    local.push(tick.elapsed().as_secs_f64() * 1e6);
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;

    let stats = admin.stats(mix).expect("final stats");
    let queries = stats.cache_hits + stats.cache_misses;
    admin.drop_topology(mix).expect("drop topology");
    MixResult {
        wall_ms,
        latencies_us: latencies.into_inner().unwrap(),
        mutations: mutations.into_inner(),
        hit_rate: if queries > 0 { stats.cache_hits as f64 / queries as f64 } else { 0.0 },
        final_epoch: stats.epoch,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(80, 300);
    let threads = scale.pick(4, 8);
    let ops = scale.pick(100, 800);
    let side = side_for_avg_degree(n, 10.0);

    let udg = connected_uniform_udg(n, side, SEED);
    let payload = io::to_text(udg.graph(), Some(udg.points()));
    let edges = udg.graph().edge_count();

    // workers > client threads + the admin connection, so the pool
    // never serializes the load generator
    let config = ServerConfig { workers: threads + 2, ..ServerConfig::default() };
    let handle =
        Server::bind("127.0.0.1:0", Store::new(), config).expect("bind loopback server");
    let addr = handle.local_addr();

    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for (mix, mutation_period) in [("read_heavy", 32usize), ("mutation_heavy", 4usize)] {
        let result = run_mix(addr, mix, &payload, side, n, threads, ops, mutation_period);
        let total = result.latencies_us.len();
        assert_eq!(total, threads * ops, "{mix}: lost requests");
        assert_eq!(
            result.final_epoch, result.mutations,
            "{mix}: epoch must count exactly the applied mutations"
        );

        let mut sorted = result.latencies_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        rows.push(BenchRow::new(mix, n, edges, threads, result.wall_ms, total));
        checks.push((format!("{mix}_p50_us"), format!("{:.1}", percentile(&sorted, 0.50))));
        checks.push((format!("{mix}_p95_us"), format!("{:.1}", percentile(&sorted, 0.95))));
        checks.push((format!("{mix}_p99_us"), format!("{:.1}", percentile(&sorted, 0.99))));
        checks.push((format!("{mix}_cache_hit_rate"), format!("{:.4}", result.hit_rate)));
        checks.push((format!("{mix}_mutations"), format!("{}", result.mutations)));
    }
    checks.push(("epochs_match_mutations".to_string(), "true".to_string()));

    let mut shutdown = Client::connect(addr).expect("shutdown connect");
    shutdown.shutdown_server().expect("graceful shutdown");
    let served = handle.join();
    checks.push(("requests_served".to_string(), format!("{served}")));

    write_bench_json("BENCH_service.json", "service", &rows, &checks);
    for r in &rows {
        println!(
            "{:<16} n={:<4} threads={:<2} {:>9.1} ms  {:>10.0} req/s",
            r.name, r.n, r.threads, r.wall_ms, r.throughput
        );
    }
    for (k, v) in &checks {
        println!("  {k} = {v}");
    }
    println!("wrote BENCH_service.json");
}
