//! Experiment binary; see DESIGN.md §5.

use wcds_bench::experiments;

fn main() {
    for table in experiments::figures::run_fig6() {
        println!("{table}");
    }
}
