//! Incremental-maintenance benchmark → `BENCH_maintenance.json`.
//!
//! Replays a fixed-seed trace of single-node motions through two
//! engines on identical point sets:
//!
//! * **incremental** — `MaintainedWcds::apply_motion`: O(Δ) grid-delta
//!   splice plus 3-hop-bounded MIS/bridge repair;
//! * **from-scratch** — rebuild the unit-disk graph and rerun
//!   Algorithm II on the post-mutation points (what the engine did
//!   before the mutation path existed).
//!
//! Every step cross-checks the two engines for exact equality (MIS and
//! bridge set) before any timing is reported, and records the repair's
//! locality radius — the per-stage propagation distance of the repair
//! (disturbed edges → MIS flips, then disturbance ∪ flips →
//! dominator-status changes): on steps where both the pre- and
//! post-mutation graphs are connected it must be ≤ 3 (the paper's §4.2
//! bound). Pass `--quick` for the CI smoke size.

use wcds_bench::perf::{time_ms, write_bench_json, BenchRow};
use wcds_bench::util::{side_for_avg_degree, Scale};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::maintenance::MaintainedWcds;
use wcds_geom::{deploy, Point};
use wcds_graph::{traversal, UnitDiskGraph};
use wcds_rng::{ChaCha12Rng, Rng};

const SEED: u64 = 42;
const RADIUS: f64 = 1.0;

struct TraceStats {
    incr_ms: f64,
    scratch_ms: f64,
    max_connected_radius: u32,
    connected_steps: usize,
    radius_le3: usize,
    touched_fraction_sum: f64,
    edges: usize,
}

/// Replays `steps` bounded single-node drifts at size `n`, timing both
/// engines and checking them against each other at every step.
fn run_trace(n: usize, steps: usize) -> TraceStats {
    let side = side_for_avg_degree(n, 11.0);
    let points = deploy::uniform(n, side, side, SEED);
    let mut rng = ChaCha12Rng::seed_from_u64(SEED ^ n as u64);
    let mut net = MaintainedWcds::new(points, RADIUS);

    let mut stats = TraceStats {
        incr_ms: 0.0,
        scratch_ms: 0.0,
        max_connected_radius: 0,
        connected_steps: 0,
        radius_le3: 0,
        touched_fraction_sum: 0.0,
        edges: net.graph().edge_count(),
    };

    for step in 0..steps {
        let u = rng.gen_range(0..n);
        let p = net.points()[u];
        let q = Point::new(
            (p.x + (rng.gen::<f64>() - 0.5) * 0.8).clamp(0.0, side),
            (p.y + (rng.gen::<f64>() - 0.5) * 0.8).clamp(0.0, side),
        );
        let pre_connected = traversal::is_connected(net.graph());

        let (ms, report) = time_ms(|| net.apply_motion(&[(u, q)]));
        stats.incr_ms += ms;
        stats.touched_fraction_sum += report.touched_nodes as f64 / n as f64;

        // the from-scratch engine rebuilds everything on the same
        // post-mutation points — and doubles as the per-step oracle
        let pts = net.points().to_vec();
        let (ms, (scratch, mis, additional)) = time_ms(|| {
            let udg = UnitDiskGraph::build(pts, RADIUS);
            let (mis, additional) = AlgorithmTwo::new().construct_parts(udg.graph());
            (udg, mis, additional)
        });
        stats.scratch_ms += ms;
        assert_eq!(net.graph(), scratch.graph(), "n={n} step {step}: CSR diverged");
        let w = net.wcds();
        assert_eq!(w.mis_dominators(), &mis[..], "n={n} step {step}: MIS diverged");
        assert_eq!(
            w.additional_dominators(),
            &additional[..],
            "n={n} step {step}: bridges diverged"
        );

        if pre_connected && traversal::is_connected(net.graph()) {
            if let Some(r) = report.locality_radius {
                stats.connected_steps += 1;
                stats.max_connected_radius = stats.max_connected_radius.max(r);
                if r <= 3 {
                    stats.radius_le3 += 1;
                }
            }
        }
    }
    stats
}

fn main() {
    let scale = Scale::from_args();
    // (n, steps): the city-scale trace replays fewer steps because each
    // step also runs the full from-scratch oracle
    let sizes: &[(usize, usize)] = scale
        .pick(&[(300, 40)][..], &[(500, 200), (1000, 200), (2000, 200), (100_000, 20)][..]);

    let mut rows = Vec::new();
    let mut checks = Vec::new();
    let mut last_speedup = 0.0;

    for &(n, steps) in sizes {
        let s = run_trace(n, steps);
        rows.push(BenchRow::new("maintain_incremental", n, s.edges, 1, s.incr_ms, steps));
        rows.push(BenchRow::new("maintain_from_scratch", n, s.edges, 1, s.scratch_ms, steps));
        last_speedup = s.scratch_ms / s.incr_ms.max(1e-9);
        checks.push((format!("speedup_n{n}"), format!("{last_speedup:.2}")));
        checks.push((
            format!("touched_fraction_n{n}"),
            format!("{:.4}", s.touched_fraction_sum / steps as f64),
        ));
        checks.push((
            format!("locality_max_connected_n{n}"),
            format!("{}", s.max_connected_radius),
        ));
        assert!(
            s.connected_steps == 0 || s.radius_le3 == s.connected_steps,
            "n={n}: {} of {} connected repairs exceeded radius 3",
            s.connected_steps - s.radius_le3,
            s.connected_steps
        );
        checks.push((format!("connected_repairs_n{n}"), format!("{}", s.connected_steps)));
        let per_step_ms = s.incr_ms / steps as f64;
        checks.push((format!("incr_ms_per_step_n{n}"), format!("{per_step_ms:.3}")));
        if scale == Scale::Full && n >= 100_000 {
            assert!(
                per_step_ms < 1000.0,
                "n={n}: {per_step_ms:.1} ms per incremental repair breaks the sub-second target"
            );
        }
    }
    checks.push(("engines_agree".to_string(), "true".to_string()));
    checks.push(("locality_le3_on_connected".to_string(), "true".to_string()));
    if scale == Scale::Full {
        assert!(
            last_speedup >= 10.0,
            "incremental speedup {last_speedup:.2}× at the largest size is below the 10× floor"
        );
    }

    write_bench_json("BENCH_maintenance.json", "maintenance", &rows, &checks);
    for r in &rows {
        println!(
            "{:<22} n={:<5} m={:<6} {:>9.2} ms  {:>10.0} mutations/s",
            r.name, r.n, r.edges, r.wall_ms, r.throughput
        );
    }
    for (k, v) in &checks {
        println!("  {k} = {v}");
    }
    println!("wrote BENCH_maintenance.json");
}
