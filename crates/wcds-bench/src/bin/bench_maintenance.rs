//! Incremental-maintenance benchmark → `BENCH_maintenance.json`.
//!
//! Replays a fixed-seed trace of single-node motions through two
//! engines on identical point sets:
//!
//! * **incremental** — `MaintainedWcds::apply_motion`: O(Δ) grid-delta
//!   splice plus 3-hop-bounded MIS/bridge repair;
//! * **from-scratch** — rebuild the unit-disk graph and rerun
//!   Algorithm II on the post-mutation points (what the engine did
//!   before the mutation path existed).
//!
//! Every step cross-checks the two engines for exact equality (MIS and
//! bridge set) before any timing is reported, and records the repair's
//! locality radius — the per-stage propagation distance of the repair
//! (disturbed edges → MIS flips, then disturbance ∪ flips →
//! dominator-status changes): on steps where both the pre- and
//! post-mutation graphs are connected it must be ≤ 3 (the paper's §4.2
//! bound). Pass `--quick` for the CI smoke size.
//!
//! A second section sweeps the **batched drift path** — 16-move ticks
//! planned into region-lease waves ([`plan_batch`]) with each wave
//! coalesced into one `apply_motion` — across 1/2/4/8 repair workers.
//! The final topology must be byte-identical at every thread count
//! (the engine is thread-count-invariant by construction); throughput
//! rows land in the JSON per `(n, threads)`. Monotone thread scaling
//! is only *asserted* when the host actually exposes ≥ 8 CPUs —
//! on smaller hosts the sweep still runs and records, plus a
//! no-collapse floor (oversubscribed runs may not fall below half the
//! single-thread rate).

use wcds_bench::perf::{time_ms, write_bench_json, BenchRow};
use wcds_bench::util::{side_for_avg_degree, Scale};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::maintenance::lease::{claim_cells, plan_batch, Scope};
use wcds_core::maintenance::MaintainedWcds;
use wcds_geom::{deploy, Point};
use wcds_graph::{io, traversal, UnitDiskGraph};
use wcds_rng::{ChaCha12Rng, Rng};

const SEED: u64 = 42;
const RADIUS: f64 = 1.0;
/// Moves per drift tick in the thread sweep — matches the service
/// benchmark's `MutateBatch` frames.
const BATCH: usize = 16;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct TraceStats {
    incr_ms: f64,
    scratch_ms: f64,
    max_connected_radius: u32,
    connected_steps: usize,
    radius_le3: usize,
    touched_fraction_sum: f64,
    edges: usize,
}

/// Replays `steps` bounded single-node drifts at size `n`, timing both
/// engines and checking them against each other at every step.
fn run_trace(n: usize, steps: usize) -> TraceStats {
    let side = side_for_avg_degree(n, 11.0);
    let points = deploy::uniform(n, side, side, SEED);
    let mut rng = ChaCha12Rng::seed_from_u64(SEED ^ n as u64);
    let mut net = MaintainedWcds::new(points, RADIUS);

    let mut stats = TraceStats {
        incr_ms: 0.0,
        scratch_ms: 0.0,
        max_connected_radius: 0,
        connected_steps: 0,
        radius_le3: 0,
        touched_fraction_sum: 0.0,
        edges: net.graph().edge_count(),
    };

    for step in 0..steps {
        let u = rng.gen_range(0..n);
        let p = net.points()[u];
        let q = Point::new(
            (p.x + (rng.gen::<f64>() - 0.5) * 0.8).clamp(0.0, side),
            (p.y + (rng.gen::<f64>() - 0.5) * 0.8).clamp(0.0, side),
        );
        let pre_connected = traversal::is_connected(net.graph());

        let (ms, report) = time_ms(|| net.apply_motion(&[(u, q)]));
        stats.incr_ms += ms;
        stats.touched_fraction_sum += report.touched_nodes as f64 / n as f64;

        // the from-scratch engine rebuilds everything on the same
        // post-mutation points — and doubles as the per-step oracle
        let pts = net.points().to_vec();
        let (ms, (scratch, mis, additional)) = time_ms(|| {
            let udg = UnitDiskGraph::build(pts, RADIUS);
            let (mis, additional) = AlgorithmTwo::new().construct_parts(udg.graph());
            (udg, mis, additional)
        });
        stats.scratch_ms += ms;
        assert_eq!(net.graph(), scratch.graph(), "n={n} step {step}: CSR diverged");
        let w = net.wcds();
        assert_eq!(w.mis_dominators(), &mis[..], "n={n} step {step}: MIS diverged");
        assert_eq!(
            w.additional_dominators(),
            &additional[..],
            "n={n} step {step}: bridges diverged"
        );

        if pre_connected && traversal::is_connected(net.graph()) {
            if let Some(r) = report.locality_radius {
                stats.connected_steps += 1;
                stats.max_connected_radius = stats.max_connected_radius.max(r);
                if r <= 3 {
                    stats.radius_le3 += 1;
                }
            }
        }
    }
    stats
}

/// Replays `ticks` fixed-seed 16-move drift ticks through the wave
/// scheduler at each thread count, timing the whole mutation path
/// (claim derivation, wave planning, coalesced repairs). Returns the
/// pre-trace edge count and `(threads, wall_ms)` per run; panics if
/// any thread count's final topology diverges from the single-thread
/// run.
fn run_thread_sweep(n: usize, ticks: usize) -> (usize, Vec<(usize, f64)>) {
    let side = side_for_avg_degree(n, 11.0);
    let points = deploy::uniform(n, side, side, SEED);
    let base = MaintainedWcds::new(points, RADIUS);
    let edges = base.graph().edge_count();
    // relative drifts, fixed up front: every thread count replays the
    // same trace over the same (deterministic) state evolution
    let mut rng = ChaCha12Rng::seed_from_u64(SEED ^ 0xba7c4 ^ n as u64);
    let trace: Vec<Vec<(usize, f64, f64)>> = (0..ticks)
        .map(|_| {
            (0..BATCH)
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        (rng.gen::<f64>() - 0.5) * 0.8,
                        (rng.gen::<f64>() - 0.5) * 0.8,
                    )
                })
                .collect()
        })
        .collect();

    let mut reference: Option<String> = None;
    let mut out = Vec::new();
    for &t in &THREAD_SWEEP {
        let mut net = base.clone();
        net.set_threads(t);
        let (ms, ()) = time_ms(|| {
            for tick in &trace {
                let moves: Vec<(usize, Point)> = tick
                    .iter()
                    .map(|&(u, dx, dy)| {
                        let p = net.points()[u];
                        let q = Point::new(
                            (p.x + dx).clamp(0.0, side),
                            (p.y + dy).clamp(0.0, side),
                        );
                        (u, q)
                    })
                    .collect();
                let claims: Vec<Scope> = moves
                    .iter()
                    .map(|&(u, q)| {
                        Scope::Cells(claim_cells(&[net.points()[u], q], RADIUS))
                    })
                    .collect();
                let plan = plan_batch(&claims);
                for wave in &plan.waves {
                    let batch: Vec<(usize, Point)> =
                        wave.iter().map(|&i| moves[i]).collect();
                    net.apply_motion(&batch);
                }
            }
        });
        let export = io::to_text(net.graph(), Some(net.points()));
        match &reference {
            None => reference = Some(export),
            Some(r) => assert_eq!(
                r, &export,
                "n={n}: {t}-thread final state diverged from single-thread"
            ),
        }
        out.push((t, ms));
    }
    (edges, out)
}

fn main() {
    let scale = Scale::from_args();
    // (n, steps): the city-scale trace replays fewer steps because each
    // step also runs the full from-scratch oracle
    let sizes: &[(usize, usize)] = scale
        .pick(&[(300, 40)][..], &[(500, 200), (1000, 200), (2000, 200), (100_000, 20)][..]);

    let mut rows = Vec::new();
    let mut checks = Vec::new();
    let mut last_speedup = 0.0;

    for &(n, steps) in sizes {
        let s = run_trace(n, steps);
        rows.push(BenchRow::new("maintain_incremental", n, s.edges, 1, s.incr_ms, steps));
        rows.push(BenchRow::new("maintain_from_scratch", n, s.edges, 1, s.scratch_ms, steps));
        last_speedup = s.scratch_ms / s.incr_ms.max(1e-9);
        checks.push((format!("speedup_n{n}"), format!("{last_speedup:.2}")));
        checks.push((
            format!("touched_fraction_n{n}"),
            format!("{:.4}", s.touched_fraction_sum / steps as f64),
        ));
        checks.push((
            format!("locality_max_connected_n{n}"),
            format!("{}", s.max_connected_radius),
        ));
        assert!(
            s.connected_steps == 0 || s.radius_le3 == s.connected_steps,
            "n={n}: {} of {} connected repairs exceeded radius 3",
            s.connected_steps - s.radius_le3,
            s.connected_steps
        );
        checks.push((format!("connected_repairs_n{n}"), format!("{}", s.connected_steps)));
        let per_step_ms = s.incr_ms / steps as f64;
        checks.push((format!("incr_ms_per_step_n{n}"), format!("{per_step_ms:.3}")));
        if scale == Scale::Full && n >= 100_000 {
            assert!(
                per_step_ms < 1000.0,
                "n={n}: {per_step_ms:.1} ms per incremental repair breaks the sub-second target"
            );
        }
    }
    checks.push(("engines_agree".to_string(), "true".to_string()));
    checks.push(("locality_le3_on_connected".to_string(), "true".to_string()));
    if scale == Scale::Full {
        assert!(
            last_speedup >= 10.0,
            "incremental speedup {last_speedup:.2}× at the largest size is below the 10× floor"
        );
    }

    // batched-drift thread sweep: (n, ticks of BATCH moves each)
    let sweep_sizes: &[(usize, usize)] =
        scale.pick(&[(300, 3)][..], &[(2000, 25), (100_000, 6)][..]);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let enforce_scaling = host_cpus >= *THREAD_SWEEP.last().unwrap_or(&1);
    for &(n, ticks) in sweep_sizes {
        let (edges, sweep) = run_thread_sweep(n, ticks);
        let moves = ticks * BATCH;
        let mut per_thread = Vec::new();
        for &(t, ms) in &sweep {
            let row = BenchRow::new("maintain_batch_sweep", n, edges, t, ms, moves);
            checks.push((
                format!("batch_moves_per_s_n{n}_t{t}"),
                format!("{:.1}", row.throughput),
            ));
            per_thread.push(row.throughput);
            rows.push(row);
        }
        // every multi-thread run must hold at least half the
        // single-thread rate even on an oversubscribed host
        let t1 = per_thread.first().copied().unwrap_or(0.0);
        for (&(t, _), &thr) in sweep.iter().zip(&per_thread) {
            assert!(
                thr >= t1 * 0.5,
                "n={n}: {t}-thread throughput {thr:.1}/s collapsed below half of \
                 single-thread {t1:.1}/s"
            );
        }
        if scale == Scale::Full && n >= 100_000 && enforce_scaling {
            for w in per_thread.windows(2) {
                assert!(
                    w[1] >= w[0] * 0.95,
                    "n={n}: thread sweep not monotone: {per_thread:?}"
                );
            }
        }
    }
    checks.push(("host_parallelism".to_string(), format!("{host_cpus}")));
    checks.push((
        "thread_scaling_enforced".to_string(),
        format!("{}", enforce_scaling && scale == Scale::Full),
    ));
    checks.push(("thread_sweep_state_identical".to_string(), "true".to_string()));

    write_bench_json("BENCH_maintenance.json", "maintenance", &rows, &checks);
    for r in &rows {
        println!(
            "{:<22} n={:<5} m={:<6} {:>9.2} ms  {:>10.0} mutations/s",
            r.name, r.n, r.edges, r.wall_ms, r.throughput
        );
    }
    for (k, v) in &checks {
        println!("  {k} = {v}");
    }
    println!("wrote BENCH_maintenance.json");
}
