//! Resilience benchmark → `BENCH_resilience.json`.
//!
//! Measures what a (2, 2)-resilient backbone buys under a dominator-
//! targeted failure storm, against the plain Algorithm II WCDS on the
//! same deployment:
//!
//! * **availability** — kill 20% of the plain backbone's dominators
//!   (the same physical nodes for both designs: layer 1 of the (2, 2)
//!   backbone *is* the plain construction) and compute, exactly, the
//!   fraction of surviving node pairs still connected over each
//!   design's surviving spanner;
//! * **re-convergence** — wall-clock to rebuild each backbone from
//!   scratch on the survivor deployment (the heal path);
//! * **healing stretch** — sampled hop stretch of the healed (2, 2)
//!   spanner against survivor-graph shortest paths.
//!
//! The storm is drawn through `wcds-sim`'s `FaultPlan`, so the exact
//! kill set replays from `(seed, salt)`. Pass `--quick` for the CI
//! smoke size.

use wcds_bench::perf::{time_ms, write_bench_json, BenchRow};
use wcds_bench::util::{side_for_avg_degree, Scale};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::resilient::{ResilientBackbone, ResilientParams};
use wcds_core::Wcds;
use wcds_geom::{deploy, Point};
use wcds_graph::{traversal, Graph, NodeId, UnitDiskGraph};
use wcds_sim::FaultPlan;

const SEED: u64 = 42;
const STORM_SEED: u64 = 0xDEAD;
const RADIUS: f64 = 1.0;
const KILL_FRACTION: f64 = 0.2;

/// Sizes of the connected components induced on the survivors by
/// `spanner` edges whose endpoints both survive.
fn survivor_components(spanner: &Graph, dead: &[bool]) -> Vec<usize> {
    let n = spanner.node_count();
    let mut seen = vec![false; n];
    let mut sizes = Vec::new();
    let mut queue = Vec::new();
    for start in 0..n {
        if seen[start] || dead[start] {
            continue;
        }
        let mut size = 0usize;
        seen[start] = true;
        queue.push(start);
        while let Some(u) = queue.pop() {
            size += 1;
            for v in spanner.adj(u) {
                if !seen[v] && !dead[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        sizes.push(size);
    }
    sizes
}

/// Exact pairwise availability from component sizes:
/// Σ cᵢ(cᵢ−1) / S(S−1) over S surviving nodes.
fn availability(sizes: &[usize]) -> f64 {
    let survivors: usize = sizes.iter().sum();
    if survivors < 2 {
        return 1.0;
    }
    let connected: f64 = sizes.iter().map(|&c| (c * c.saturating_sub(1)) as f64).sum();
    connected / (survivors * (survivors - 1)) as f64
}

/// Sampled hop stretch of `spanner` routes against `g` shortest paths:
/// `(max, mean)` over pairs at graph distance ≥ 2 from up to 20 evenly
/// spaced sources.
fn hop_stretch(g: &Graph, spanner: &Graph) -> (f64, f64) {
    let n = g.node_count();
    let sources = 20.min(n);
    let target_stride = (n / 400).max(1);
    let mut max = 1.0f64;
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for i in 0..sources {
        let s = i * n / sources;
        let dg = traversal::bfs_distances(g, s);
        let ds = traversal::bfs_distances(spanner, s);
        for t in (0..n).step_by(target_stride) {
            let (Some(hg), Some(hs)) = (dg[t], ds[t]) else { continue };
            if hg < 2 {
                continue;
            }
            let r = f64::from(hs) / f64::from(hg);
            max = max.max(r);
            sum += r;
            count += 1;
        }
    }
    (max, if count > 0 { sum / count as f64 } else { 1.0 })
}

struct StormResult {
    edges: usize,
    killed: usize,
    plain_size: usize,
    r22_size: usize,
    construct_plain_ms: f64,
    construct_r22_ms: f64,
    avail_plain: f64,
    avail_r22: f64,
    avail_ceiling: f64,
    heal_plain_ms: f64,
    heal_r22_ms: f64,
    stretch_max: f64,
    stretch_mean: f64,
}

fn run_storm(n: usize) -> StormResult {
    let side = side_for_avg_degree(n, 12.0);
    let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, SEED ^ n as u64), RADIUS);
    let g = udg.graph();

    let (construct_plain_ms, plain) = time_ms(|| {
        let (mis, additional) = AlgorithmTwo::new().construct_parts(g);
        Wcds::new(mis, additional)
    });
    let params = ResilientParams::new(2, 2).expect("(2,2) is in range");
    let (construct_r22_ms, r22) = time_ms(|| ResilientBackbone::construct(g, params));

    let plain_spanner = plain.weakly_induced_subgraph(g);
    let r22_spanner = r22.spanner(g);

    // the storm: a seeded, replayable kill of 20% of the plain
    // backbone's dominators — identical physical failures for both
    // designs
    let pool: Vec<NodeId> = plain.nodes().to_vec();
    let fault = FaultPlan::new(STORM_SEED).crash_fraction_of(&pool, KILL_FRACTION, n as u64);
    let mut dead = vec![false; n];
    for c in fault.crashed_nodes() {
        dead[c] = true;
    }
    let killed = dead.iter().filter(|&&d| d).count();

    let avail_plain = availability(&survivor_components(&plain_spanner, &dead));
    let avail_r22 = availability(&survivor_components(&r22_spanner, &dead));
    // what any design could serve: the survivor graph itself
    let avail_ceiling = availability(&survivor_components(g, &dead));

    // re-convergence: rebuild each backbone from scratch on the
    // survivor deployment
    let survivor_points: Vec<Point> = (0..n).filter(|&u| !dead[u]).map(|u| udg.points()[u]).collect();
    let (heal_plain_ms, _) = time_ms(|| {
        let sudg = UnitDiskGraph::build(survivor_points.clone(), RADIUS);
        let (mis, additional) = AlgorithmTwo::new().construct_parts(sudg.graph());
        Wcds::new(mis, additional)
    });
    let (heal_r22_ms, (sudg, healed)) = time_ms(|| {
        let sudg = UnitDiskGraph::build(survivor_points.clone(), RADIUS);
        let healed = ResilientBackbone::construct(sudg.graph(), params);
        (sudg, healed)
    });
    let (stretch_max, stretch_mean) = hop_stretch(sudg.graph(), &healed.spanner(sudg.graph()));

    StormResult {
        edges: g.edge_count(),
        killed,
        plain_size: plain.len(),
        r22_size: r22.len(),
        construct_plain_ms,
        construct_r22_ms,
        avail_plain,
        avail_r22,
        avail_ceiling,
        heal_plain_ms,
        heal_r22_ms,
        stretch_max,
        stretch_mean,
    }
}

fn main() {
    let scale = Scale::from_args();
    let sizes: &[usize] = scale.pick(&[300][..], &[2000, 100_000][..]);

    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for &n in sizes {
        let s = run_storm(n);
        rows.push(BenchRow::new("construct_plain", n, s.edges, 1, s.construct_plain_ms, n));
        rows.push(BenchRow::new("construct_r22", n, s.edges, 1, s.construct_r22_ms, n));
        rows.push(BenchRow::new("reconverge_plain", n, s.edges, 1, s.heal_plain_ms, n));
        rows.push(BenchRow::new("reconverge_r22", n, s.edges, 1, s.heal_r22_ms, n));

        checks.push((format!("killed_dominators_n{n}"), format!("{}", s.killed)));
        checks.push((format!("backbone_plain_n{n}"), format!("{}", s.plain_size)));
        checks.push((format!("backbone_r22_n{n}"), format!("{}", s.r22_size)));
        checks.push((format!("availability_plain_n{n}"), format!("{:.4}", s.avail_plain)));
        checks.push((format!("availability_r22_n{n}"), format!("{:.4}", s.avail_r22)));
        checks.push((format!("availability_ceiling_n{n}"), format!("{:.4}", s.avail_ceiling)));
        checks.push((format!("reconverge_r22_ms_n{n}"), format!("{:.1}", s.heal_r22_ms)));
        checks.push((format!("healing_stretch_max_n{n}"), format!("{:.2}", s.stretch_max)));
        checks.push((format!("healing_stretch_mean_n{n}"), format!("{:.3}", s.stretch_mean)));

        assert!(
            s.avail_r22 >= s.avail_plain,
            "n={n}: (2,2) availability {:.4} below plain {:.4}",
            s.avail_r22,
            s.avail_plain
        );
        if scale == Scale::Full {
            assert!(
                s.avail_r22 >= 0.99,
                "n={n}: (2,2) availability {:.4} misses the 99% floor after a 20% dominator kill",
                s.avail_r22
            );
        }
    }
    checks.push(("kill_fraction".to_string(), format!("{KILL_FRACTION}")));
    checks.push(("storm_seed".to_string(), format!("{STORM_SEED}")));
    checks.push(("r22_dominates_plain".to_string(), "true".to_string()));

    write_bench_json("BENCH_resilience.json", "resilience", &rows, &checks);
    for r in &rows {
        println!(
            "{:<18} n={:<7} m={:<8} {:>10.2} ms  {:>12.0} nodes/s",
            r.name, r.n, r.edges, r.wall_ms, r.throughput
        );
    }
    for (k, v) in &checks {
        println!("  {k} = {v}");
    }
    println!("wrote BENCH_resilience.json");
}
