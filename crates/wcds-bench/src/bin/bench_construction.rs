//! Graph-construction benchmark → `BENCH_construction.json`.
//!
//! Fixed-seed instances; each engine is cross-checked against its
//! pre-CSR baseline for equality before the timing is recorded. Pass
//! `--quick` for the CI smoke size.

use wcds_bench::perf::{
    legacy_flat_edges, legacy_torus_edges, time_ms, write_bench_json, BenchRow,
};
use wcds_bench::util::{side_for_avg_degree, Scale};
use wcds_geom::deploy;
use wcds_graph::{GraphBuilder, UnitDiskGraph};

const SEED: u64 = 42;

fn main() {
    let scale = Scale::from_args();
    let sizes: &[usize] = scale.pick(&[300][..], &[500, 1000, 2000][..]);
    let mut rows = Vec::new();
    let mut checks = Vec::new();

    for &n in sizes {
        let side = side_for_avg_degree(n, 11.0);
        let pts = deploy::uniform(n, side, side, SEED);

        let (grid_ms, udg) = time_ms(|| UnitDiskGraph::build(pts.clone(), 1.0));
        let m = udg.graph().edge_count();
        rows.push(BenchRow::new("udg_grid_build", n, m, 1, grid_ms, m));

        let (naive_ms, naive) = time_ms(|| legacy_flat_edges(&pts, 1.0));
        assert_eq!(*udg.graph(), naive, "grid UDG diverged from naive at n={n}");
        rows.push(BenchRow::new("udg_naive_build", n, m, 1, naive_ms, m));

        let (torus_ms, torus) =
            time_ms(|| UnitDiskGraph::build_torus(pts.clone(), 1.0, side, side));
        let mt = torus.graph().edge_count();
        rows.push(BenchRow::new("torus_grid_build", n, mt, 1, torus_ms, mt));

        let (torus_naive_ms, torus_naive) =
            time_ms(|| legacy_torus_edges(&pts, 1.0, side, side));
        assert_eq!(*torus.graph(), torus_naive, "grid torus diverged from naive at n={n}");
        rows.push(BenchRow::new("torus_naive_build", n, mt, 1, torus_naive_ms, mt));

        // CSR assembly alone (edge list already known): the counting +
        // prefix-sum + fill passes of GraphBuilder::build
        let edges: Vec<_> = udg.graph().edges().iter().map(|e| e.endpoints()).collect();
        let (csr_ms, rebuilt) = time_ms(|| {
            let mut b = GraphBuilder::new(n);
            for &(u, v) in &edges {
                b.add_edge(u, v);
            }
            b.build()
        });
        assert_eq!(rebuilt, *udg.graph(), "CSR rebuild diverged at n={n}");
        rows.push(BenchRow::new("csr_assemble", n, m, 1, csr_ms, m));

        if n == *sizes.last().expect("non-empty sizes") {
            checks.push((
                "torus_speedup_vs_naive".to_string(),
                format!("{:.2}", torus_naive_ms / torus_ms.max(1e-9)),
            ));
        }
    }
    checks.push(("engines_agree".to_string(), "true".to_string()));

    write_bench_json("BENCH_construction.json", "construction", &rows, &checks);
    for r in &rows {
        println!(
            "{:<20} n={:<5} m={:<6} {:>9.2} ms  {:>12.0} edges/s",
            r.name, r.n, r.edges, r.wall_ms, r.throughput
        );
    }
    println!("wrote BENCH_construction.json");
}
