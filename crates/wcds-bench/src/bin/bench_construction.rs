//! Graph-construction benchmark → `BENCH_construction.json`.
//!
//! Two regimes:
//!
//! * **Legacy-checked sizes** (n ≤ 2000): every engine is cross-checked
//!   against its pre-CSR `O(n²)` baseline for exact equality before the
//!   timing is recorded. The naive flat-build time at the largest of
//!   these sizes is the denominator for the city-scale speedup check.
//! * **City scale** (n = 20k on `--quick`, 100k and 1M at full scale):
//!   the `O(n²)` baselines are infeasible, so the sweep measures the
//!   grid-partitioned parallel pipeline — dense-grid UDG build and
//!   [`PartitionedTwo`] across 1/2/4/8 workers (every thread count must
//!   produce byte-identical output), the sequential [`AlgorithmTwo`]
//!   oracle at n = 100k (`engines_agree`), and the certified sampled
//!   dilation estimator on the resulting spanner. The 100k construction
//!   must beat the quadratic extrapolation of the measured naive time
//!   (`naive_ms(2000) · (n/2000)²`) by ≥ 10×.
//!
//! Every row records the process peak RSS (`VmHWM`) at the time it was
//! taken, so memory growth is attributable to the first row that shows
//! it.

use wcds_bench::perf::{
    legacy_flat_edges, legacy_torus_edges, time_ms, write_bench_json, BenchRow,
};
use wcds_bench::util::{connected_uniform_udg, side_for_avg_degree, Scale};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::dilation::DilationEstimate;
use wcds_core::partition::PartitionedTwo;
use wcds_core::Wcds;
use wcds_geom::deploy;
use wcds_graph::{parallel, GraphBuilder, NodeId, UnitDiskGraph};

const SEED: u64 = 42;
/// Worker counts swept at city scale (satellite: thread-scaling rows).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Sources sampled by the certified dilation estimator at city scale.
const DILATION_SOURCES: usize = 32;
/// Largest n that still runs the full thread sweep plus the sequential
/// engine; above this only a feasibility row at the widest width.
const FULL_SWEEP_MAX_NODES: usize = 100_000;

fn main() {
    let scale = Scale::from_args();
    let sizes: &[usize] = scale.pick(&[300][..], &[500, 1000, 2000][..]);
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    let mut naive_baseline: Option<(usize, f64)> = None;

    for &n in sizes {
        let side = side_for_avg_degree(n, 11.0);
        let pts = deploy::uniform(n, side, side, SEED);

        // warm the allocator and caches before timing anything: at
        // sub-millisecond scales the *second* builder to run otherwise
        // inherits warm malloc arenas and looks faster than it is (the
        // n=500 "torus anomaly" in earlier recordings was exactly this
        // — both paths route to the same direct scan there)
        std::hint::black_box(UnitDiskGraph::build(pts.clone(), 1.0));
        std::hint::black_box(legacy_flat_edges(&pts, 1.0));
        std::hint::black_box(UnitDiskGraph::build_torus(pts.clone(), 1.0, side, side));
        std::hint::black_box(legacy_torus_edges(&pts, 1.0, side, side));

        let (grid_ms, udg) = time_ms(|| UnitDiskGraph::build(pts.clone(), 1.0));
        let m = udg.graph().edge_count();
        rows.push(BenchRow::new("udg_grid_build", n, m, 1, grid_ms, m));

        let (naive_ms, naive) = time_ms(|| legacy_flat_edges(&pts, 1.0));
        assert_eq!(*udg.graph(), naive, "grid UDG diverged from naive at n={n}");
        rows.push(BenchRow::new("udg_naive_build", n, m, 1, naive_ms, m));
        naive_baseline = Some((n, naive_ms));

        let (torus_ms, torus) =
            time_ms(|| UnitDiskGraph::build_torus(pts.clone(), 1.0, side, side));
        let mt = torus.graph().edge_count();
        rows.push(BenchRow::new("torus_grid_build", n, mt, 1, torus_ms, mt));

        let (torus_naive_ms, torus_naive) =
            time_ms(|| legacy_torus_edges(&pts, 1.0, side, side));
        assert_eq!(*torus.graph(), torus_naive, "grid torus diverged from naive at n={n}");
        rows.push(BenchRow::new("torus_naive_build", n, mt, 1, torus_naive_ms, mt));

        // CSR assembly alone (edge list already known): the counting +
        // prefix-sum + fill passes of GraphBuilder::build
        let edges: Vec<_> = udg.graph().edges().iter().map(|e| e.endpoints()).collect();
        let (csr_ms, rebuilt) = time_ms(|| {
            let mut b = GraphBuilder::new(n);
            for &(u, v) in &edges {
                b.add_edge(u, v);
            }
            b.build()
        });
        assert_eq!(rebuilt, *udg.graph(), "CSR rebuild diverged at n={n}");
        rows.push(BenchRow::new("csr_assemble", n, m, 1, csr_ms, m));

        if n == *sizes.last().expect("non-empty sizes") {
            checks.push((
                "torus_speedup_vs_naive".to_string(),
                format!("{:.2}", torus_naive_ms / torus_ms.max(1e-9)),
            ));
        }
    }
    checks.push(("engines_agree".to_string(), "true".to_string()));

    let large: &[usize] = scale.pick(&[20_000][..], &[100_000, 1_000_000][..]);
    for &n in large {
        city_scale(n, scale, naive_baseline, &mut rows, &mut checks);
    }

    write_bench_json("BENCH_construction.json", "construction", &rows, &checks);
    for r in &rows {
        println!(
            "{:<22} n={:<7} m={:<8} t={} {:>9.2} ms  {:>12.0} items/s  rss {:>6.1} MiB",
            r.name, r.n, r.edges, r.threads, r.wall_ms, r.throughput, r.peak_rss_mb
        );
    }
    for (k, v) in &checks {
        println!("  {k} = {v}");
    }
    println!("wrote BENCH_construction.json");
}

/// City-scale sweep at one size: parallel build + partitioned
/// Algorithm II across the thread sweep, sequential oracle and sampled
/// dilation where feasible.
fn city_scale(
    n: usize,
    scale: Scale,
    naive_baseline: Option<(usize, f64)>,
    rows: &mut Vec<BenchRow>,
    checks: &mut Vec<(String, String)>,
) {
    let side = side_for_avg_degree(n, 11.0);
    let pts = deploy::uniform(n, side, side, SEED);
    let sweep: &[usize] =
        if n > FULL_SWEEP_MAX_NODES { &THREAD_SWEEP[3..] } else { &THREAD_SWEEP[..] };

    // the dense-grid build, once per worker count — byte-identical CSR
    // is asserted across the sweep
    let mut reference: Option<UnitDiskGraph> = None;
    let mut best_build_ms = f64::INFINITY;
    for &t in sweep {
        let (ms, udg) = time_ms(|| UnitDiskGraph::build_with_threads(pts.clone(), 1.0, t));
        let m = udg.graph().edge_count();
        rows.push(BenchRow::new("udg_parallel_build", n, m, t, ms, m));
        best_build_ms = best_build_ms.min(ms);
        if let Some(r) = &reference {
            assert_eq!(
                r.graph(),
                udg.graph(),
                "parallel build not byte-identical at n={n}, {t} threads"
            );
        }
        reference = Some(udg);
    }
    let udg = reference.expect("non-empty thread sweep");
    let m = udg.graph().edge_count();

    // grid-partitioned Algorithm II across the same sweep
    let mut parts: Option<(Vec<NodeId>, Vec<NodeId>)> = None;
    let mut best_construct_ms = f64::INFINITY;
    for &t in sweep {
        let (ms, got) = time_ms(|| PartitionedTwo::with_threads(t).construct_parts(&udg));
        rows.push(BenchRow::new("algo2_partitioned", n, m, t, ms, n));
        best_construct_ms = best_construct_ms.min(ms);
        if let Some(p) = &parts {
            assert_eq!(*p, got, "partitioned output not thread-invariant at n={n}, {t} threads");
        }
        parts = Some(got);
    }
    let (mis, additional) = parts.expect("non-empty thread sweep");

    if n <= FULL_SWEEP_MAX_NODES {
        // engines_agree far beyond the built-in n ≤ 5000 oracle: the
        // sequential engine on the same instance, compared exactly
        let (seq_ms, (seq_mis, seq_add)) =
            time_ms(|| AlgorithmTwo::new().construct_parts(udg.graph()));
        assert_eq!(mis, seq_mis, "partitioned MIS diverged from sequential at n={n}");
        assert_eq!(additional, seq_add, "partitioned bridges diverged from sequential at n={n}");
        rows.push(BenchRow::new("algo2_sequential", n, m, 1, seq_ms, n));
        checks.push((format!("engines_agree_n{n}"), "true".to_string()));

        // certified sampled dilation over the spanner (exact per-source,
        // one-sided bounds overall). The estimator needs a *connected*
        // instance; at average degree 11 a uniform deployment this size
        // almost surely has isolated border nodes, so the dilation row
        // runs on a denser (average degree ~20) companion instance —
        // `connected_uniform_udg` resamples seeds until connected.
        let dil_udg = connected_uniform_udg(n, side_for_avg_degree(n, 20.0), SEED);
        let (dil_mis, dil_add) =
            PartitionedTwo::with_threads(THREAD_SWEEP[3]).construct_parts(&dil_udg);
        let spanner = Wcds::new(dil_mis, dil_add).weakly_induced_subgraph(dil_udg.graph());
        let (dil_ms, est) = time_ms(|| {
            DilationEstimate::sampled(
                dil_udg.graph(),
                &spanner,
                dil_udg.points(),
                DILATION_SOURCES,
                SEED,
            )
        });
        rows.push(BenchRow::new(
            "dilation_sampled",
            n,
            spanner.edge_count(),
            parallel::threads(),
            dil_ms,
            est.sources_sampled,
        ));
        checks.push((
            format!("sampled_topo_ratio_lb_n{n}"),
            format!("{:.4}", est.report.topological_ratio()),
        ));
        checks.push((
            format!("sampled_geo_ratio_lb_n{n}"),
            format!("{:.4}", est.report.geometric_ratio()),
        ));
        checks.push((
            format!("sampled_pair_coverage_n{n}"),
            format!("{:.6}", est.pair_coverage),
        ));
        checks.push((format!("sampled_exact_n{n}"), format!("{}", est.exact)));

        // the acceptance gate: measured naive time at the largest
        // legacy size, extrapolated quadratically to n, vs the best
        // build + construct of this sweep
        let (base_n, base_ms) = naive_baseline.expect("legacy sizes ran first");
        let extrapolated_ms = base_ms * (n as f64 / base_n as f64).powi(2);
        let total_ms = best_build_ms + best_construct_ms;
        let speedup = extrapolated_ms / total_ms.max(1e-9);
        checks.push((
            format!("speedup_vs_quadratic_naive_n{n}"),
            format!("{speedup:.1}"),
        ));
        if scale == Scale::Full {
            assert!(
                speedup >= 10.0,
                "n={n}: {total_ms:.1} ms vs {extrapolated_ms:.1} ms extrapolated naive \
                 is only {speedup:.1}x (floor: 10x)"
            );
        }
    } else {
        checks.push((format!("feasibility_n{n}"), "true".to_string()));
    }
}
