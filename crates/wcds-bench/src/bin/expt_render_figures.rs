//! Writes the paper-style figures as SVG artifacts into ./artifacts.

use wcds_bench::experiments::figures;

fn main() {
    let dir = std::path::Path::new("artifacts");
    match figures::write_figure_svgs(dir) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
