//! Perf-trajectory benchmarks: wall-clock measurements of the graph
//! core, written as machine-readable `BENCH_*.json` artifacts.
//!
//! Each record compares the current engine against the **pre-CSR
//! baseline** (adjacency as `Vec<Vec<NodeId>>`, per-source allocation,
//! layer sort in the min-hop/max-length pass), reimplemented here
//! verbatim so the speedup denominator stays honest as the fast path
//! evolves. The baselines also double as cross-checks: every benchmark
//! asserts the old and new engines produce identical results before it
//! reports a timing.
//!
//! No `serde` in the dependency tree — the JSON is assembled by hand
//! from flat rows, which is all these artifacts need.

use std::collections::VecDeque;
use std::time::Instant;
use wcds_geom::Point;
use wcds_graph::{Graph, NodeId};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// What was measured (e.g. `"dilation_csr_parallel"`).
    pub name: String,
    /// Node count of the instance.
    pub n: usize,
    /// Edge count of the instance.
    pub edges: usize,
    /// Worker threads used (1 for serial and legacy paths).
    pub threads: usize,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Work items per second (sources for sweeps, edges for builds).
    pub throughput: f64,
    /// Process peak resident set size (MiB) when the row was recorded —
    /// the `VmHWM` high-water mark, so it is monotone across rows; the
    /// *first* row to report a jump is the one that paid for it. `0.0`
    /// where `/proc/self/status` is unavailable.
    pub peak_rss_mb: f64,
}

impl BenchRow {
    /// Builds a row from a measured duration and a work-item count,
    /// capturing the current peak RSS.
    pub fn new(
        name: &str,
        n: usize,
        edges: usize,
        threads: usize,
        wall_ms: f64,
        items: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            n,
            edges,
            threads,
            wall_ms,
            throughput: if wall_ms > 0.0 { items as f64 / (wall_ms / 1000.0) } else { 0.0 },
            peak_rss_mb: peak_rss_mb(),
        }
    }
}

/// This process's peak resident set size in MiB, read from the `VmHWM`
/// line of `/proc/self/status`. Returns `0.0` on platforms without
/// procfs rather than failing the benchmark.
pub fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Times `f`, returning `(wall_ms, result)`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1000.0, out)
}

/// Serialises rows plus free-form check entries into a small JSON
/// document and writes it to `path`.
///
/// `checks` values are emitted verbatim, so pass valid JSON scalars
/// (`"true"`, `"3.14"`, `"\"text\""`).
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_bench_json(path: &str, bench: &str, rows: &[BenchRow], checks: &[(String, String)]) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"edges\": {}, \"threads\": {}, \
             \"wall_ms\": {:.3}, \"throughput\": {:.1}, \"peak_rss_mb\": {:.1}}}{}\n",
            r.name,
            r.n,
            r.edges,
            r.threads,
            r.wall_ms,
            r.throughput,
            r.peak_rss_mb,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"checks\": {\n");
    for (i, (k, v)) in checks.iter().enumerate() {
        out.push_str(&format!(
            "    \"{k}\": {v}{}\n",
            if i + 1 < checks.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// The pre-CSR adjacency representation: one heap allocation per node.
pub fn to_vec_adjacency(g: &Graph) -> Vec<Vec<NodeId>> {
    g.nodes().map(|u| g.adj(u).collect()).collect()
}

/// Pre-CSR BFS: fresh `Vec<Option<u32>>` + `VecDeque` per source.
pub fn legacy_bfs(adj: &[Vec<NodeId>], source: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; adj.len()];
    let mut q = VecDeque::new();
    dist[source] = Some(0);
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for &v in &adj[u] {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

/// Pre-CSR Dijkstra over Euclidean edge lengths.
pub fn legacy_geometric(adj: &[Vec<NodeId>], points: &[Point], source: NodeId) -> Vec<Option<f64>> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Entry {
        dist: f64,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .dist
                .partial_cmp(&self.dist)
                .expect("finite distances")
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut dist: Vec<Option<f64>> = vec![None; adj.len()];
    let mut heap = BinaryHeap::new();
    dist[source] = Some(0.0);
    heap.push(Entry { dist: 0.0, node: source });
    while let Some(Entry { dist: du, node: u }) = heap.pop() {
        if dist[u].is_some_and(|best| du > best) {
            continue;
        }
        for &v in &adj[u] {
            let cand = du + points[u].distance(points[v]);
            if dist[v].is_none_or(|best| cand < best) {
                dist[v] = Some(cand);
                heap.push(Entry { dist: cand, node: v });
            }
        }
    }
    dist
}

/// Pre-CSR min-hop/max-length: BFS, then an `O(n log n)` layer sort
/// before the DAG pass.
pub fn legacy_min_hop_max_length(
    adj: &[Vec<NodeId>],
    points: &[Point],
    source: NodeId,
) -> Vec<Option<f64>> {
    let hops = legacy_bfs(adj, source);
    let mut len: Vec<Option<f64>> = vec![None; adj.len()];
    len[source] = Some(0.0);
    let mut order: Vec<NodeId> =
        (0..adj.len()).filter(|&u| hops[u].is_some()).collect();
    order.sort_unstable_by_key(|&u| hops[u].expect("filtered reachable"));
    for &u in &order {
        let Some(lu) = len[u] else { continue };
        let hu = hops[u].expect("reachable");
        for &v in &adj[u] {
            if hops[v] == Some(hu + 1) {
                let cand = lu + points[u].distance(points[v]);
                if len[v].is_none_or(|best| cand > best) {
                    len[v] = Some(cand);
                }
            }
        }
    }
    len
}

/// The pre-CSR dilation sweep, exactly as `DilationReport::measure`
/// was implemented before the CSR engine: serial over sources, fresh
/// allocations per source. Returns
/// `(topo_ratio, geo_ratio, topo_slack, geo_slack)`.
pub fn legacy_dilation_sweep(
    adj_g: &[Vec<NodeId>],
    adj_s: &[Vec<NodeId>],
    points: &[Point],
) -> (f64, f64, Option<f64>, Option<f64>) {
    let n = adj_g.len();
    let mut topo_ratio = 1.0f64;
    let mut geo_ratio = 1.0f64;
    let mut topo_slack: Option<f64> = None;
    let mut geo_slack: Option<f64> = None;
    for u in 0..n {
        let h_g = legacy_bfs(adj_g, u);
        let l_g = legacy_geometric(adj_g, points, u);
        let l_s = legacy_min_hop_max_length(adj_s, points, u);
        let h_s = legacy_bfs(adj_s, u);
        for v in (u + 1)..n {
            let Some(hg) = h_g[v] else { continue };
            if hg <= 1 {
                continue;
            }
            let hs = h_s[v].expect("spanner preserves connectivity");
            let lg = l_g[v].expect("hop-connected implies length-connected");
            let ls = l_s[v].expect("hop-connected in spanner");
            topo_ratio = topo_ratio.max(hs as f64 / hg as f64);
            geo_ratio = geo_ratio.max(ls / lg);
            let st = (3 * hg + 2) as f64 - hs as f64;
            if topo_slack.is_none_or(|s| st < s) {
                topo_slack = Some(st);
            }
            let sg = 6.0 * lg + 5.0 - ls;
            if geo_slack.is_none_or(|s| sg < s) {
                geo_slack = Some(sg);
            }
        }
    }
    (topo_ratio, geo_ratio, topo_slack, geo_slack)
}

/// The pre-grid `O(n²)` toroidal UDG construction.
pub fn legacy_torus_edges(points: &[Point], radius: f64, width: f64, height: f64) -> Graph {
    let torus_dist2 = |a: Point, b: Point| -> f64 {
        let dx = (a.x - b.x).abs();
        let dy = (a.y - b.y).abs();
        let dx = dx.min(width - dx);
        let dy = dy.min(height - dy);
        dx * dx + dy * dy
    };
    let mut b = wcds_graph::GraphBuilder::new(points.len());
    for u in 0..points.len() {
        for v in (u + 1)..points.len() {
            if torus_dist2(points[u], points[v]) <= radius * radius {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// The naive `O(n²)` flat UDG construction (pre-spatial-hash).
pub fn legacy_flat_edges(points: &[Point], radius: f64) -> Graph {
    let mut b = wcds_graph::GraphBuilder::new(points.len());
    let r2 = radius * radius;
    for u in 0..points.len() {
        for v in (u + 1)..points.len() {
            if points[u].distance_squared(points[v]) <= r2 {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{connected_uniform_udg, side_for_avg_degree};
    use wcds_graph::{shortest_path, traversal};

    #[test]
    fn legacy_primitives_match_current_engine() {
        let udg = connected_uniform_udg(80, side_for_avg_degree(80, 10.0), 3);
        let g = udg.graph();
        let adj = to_vec_adjacency(g);
        for src in [0, 13, 79] {
            assert_eq!(legacy_bfs(&adj, src), traversal::bfs_distances(g, src));
            assert_eq!(
                legacy_geometric(&adj, udg.points(), src),
                shortest_path::geometric_distances(g, udg.points(), src)
            );
            assert_eq!(
                legacy_min_hop_max_length(&adj, udg.points(), src),
                shortest_path::min_hop_max_length(g, udg.points(), src)
            );
        }
    }

    #[test]
    fn legacy_constructions_match_current_builders() {
        let pts = wcds_geom::deploy::uniform(150, 5.0, 5.0, 9);
        let flat = wcds_graph::UnitDiskGraph::build(pts.clone(), 1.0);
        assert_eq!(*flat.graph(), legacy_flat_edges(&pts, 1.0));
        let torus = wcds_graph::UnitDiskGraph::build_torus(pts.clone(), 1.0, 5.0, 5.0);
        assert_eq!(*torus.graph(), legacy_torus_edges(&pts, 1.0, 5.0, 5.0));
    }

    #[test]
    fn bench_row_throughput() {
        let r = BenchRow::new("x", 10, 20, 1, 500.0, 1000);
        assert!((r.throughput - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let dir = std::env::temp_dir().join("wcds_bench_json_test.json");
        let path = dir.to_str().unwrap();
        write_bench_json(
            path,
            "demo",
            &[BenchRow::new("a", 1, 2, 1, 3.0, 4)],
            &[("ok".into(), "true".into())],
        );
        let s = std::fs::read_to_string(path).unwrap();
        assert!(s.contains("\"bench\": \"demo\""));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"peak_rss_mb\": "));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn peak_rss_is_positive_on_linux_and_monotone() {
        let before = peak_rss_mb();
        if cfg!(target_os = "linux") {
            assert!(before > 0.0, "VmHWM should be readable on Linux");
        }
        // touch a few MiB so the high-water mark can only grow
        let ballast = vec![1u8; 8 << 20];
        std::hint::black_box(&ballast);
        assert!(peak_rss_mb() >= before);
    }
}
