//! Deterministic, dependency-free pseudo-randomness for the workspace.
//!
//! Every seeded generator and simulator in the workspace draws from
//! [`ChaCha12Rng`], a from-scratch implementation of the ChaCha stream
//! cipher reduced to 12 rounds — the same generator family the `rand`
//! ecosystem ships as `rand_chacha::ChaCha12Rng`. The build environment
//! has no access to crates.io, so the workspace carries its own
//! implementation; the API mirrors the small slice of `rand` the
//! workspace actually uses (`seed_from_u64`, `gen`, `gen_range`) to keep
//! call sites idiomatic.
//!
//! Determinism contract: for a fixed seed, the byte stream — and hence
//! every derived sample — is identical across platforms, targets, and
//! thread counts. Experiments cite seeds; replays must be bit-exact.
//!
//! # Examples
//!
//! ```
//! use wcds_rng::{ChaCha12Rng, Rng};
//!
//! let mut a = ChaCha12Rng::seed_from_u64(7);
//! let mut b = ChaCha12Rng::seed_from_u64(7);
//! assert_eq!(a.gen::<f64>(), b.gen::<f64>());
//! let k = a.gen_range(0..10usize);
//! assert!(k < 10);
//! ```

/// The ChaCha quarter-round.
#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64 step, used to expand a 64-bit seed into key material
/// (the same expansion idea `rand`'s `seed_from_u64` uses).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A ChaCha stream cipher with 12 rounds, exposed as a PRNG.
///
/// 12 rounds is the conventional speed/quality point for simulation
/// workloads: far beyond statistical-test strength, ~1.7× faster than
/// the 20-round variant.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    /// Buffered output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill".
    cursor: usize,
}

impl ChaCha12Rng {
    /// Creates a generator whose key is expanded from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        Self { key, counter: 0, block: [0; 16], cursor: 16 }
    }

    /// Generates the next 64-byte ChaCha block into the buffer.
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        for _ in 0..6 {
            // column round + diagonal round = 2 of the 12 rounds
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = s;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl Rng for ChaCha12Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// The sampling interface: raw words plus typed helpers.
///
/// Mirrors the slice of `rand::Rng` the workspace uses so seeded code
/// reads identically to its `rand`-based ancestor.
pub trait Rng {
    /// The next 32 raw bits of the stream.
    fn next_u32(&mut self) -> u32;

    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of type `T` (see [`Sample`] for the supported
    /// types and their distributions).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// Integer ranges are unbiased (widening-multiply with rejection);
    /// float ranges are `lo + u·(hi − lo)` with `u ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

/// Types that can be sampled uniformly from the raw bit stream.
pub trait Sample {
    /// Draws one sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire's
/// widening-multiply method with rejection.
#[inline]
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound {
            return (m >> 64) as u64;
        }
        // low-part rejection zone: only `bound.wrapping_neg() % bound`
        // values are biased; retry on them
        let threshold = bound.wrapping_neg() % bound;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform element of the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impl!(usize, u64, u32, u16, u8);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // guard against rounding up to the excluded endpoint
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_is_stable_across_releases() {
        // pinned first words for seed 0: any change to the generator is a
        // breaking change for every recorded experiment seed
        let mut r = ChaCha12Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
        let mut again = ChaCha12Rng::seed_from_u64(0);
        let repeat: Vec<u32> = (0..4).map(|_| again.next_u32()).collect();
        assert_eq!(first, repeat);
        assert!(first.iter().any(|&w| w != 0), "degenerate stream");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = ChaCha12Rng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_endpoints() {
        let mut r = ChaCha12Rng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = r.gen_range(0..5usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "range sampling missed a value");
        for _ in 0..1000 {
            let k = r.gen_range(3..=7u64);
            assert!((3..=7).contains(&k));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = ChaCha12Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&x));
            let y = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = ChaCha12Rng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = ChaCha12Rng::seed_from_u64(0);
        let _ = r.gen_range(5..5usize);
    }

    #[test]
    fn counter_advances_past_one_block() {
        // 16 words per block; draw 40 words and ensure no repetition window
        let mut r = ChaCha12Rng::seed_from_u64(21);
        let ws: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        assert_ne!(&ws[0..16], &ws[16..32], "blocks must differ");
    }
}
