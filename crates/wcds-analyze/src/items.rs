//! Lightweight Rust item parser over masked source.
//!
//! Extracts from one comment/string-masked file ([`crate::lexer`]) the
//! facts the interprocedural analyses need, per function:
//!
//! * **call sites** — `name(`, `Qual::name(`, `.name(` — with the set
//!   of lock classes held at the call;
//! * **lock acquisitions** — `.read()` / `.write()` / `.lock()` /
//!   `.get_or_init(` and the store's `read_guard(` / `write_guard(`
//!   wrappers — classified by receiver (`entry.topo.read()` acquires
//!   class `topo`), with the classes already held (lock-order edges);
//! * **blocking calls** — socket reads/writes, `thread::sleep`,
//!   channel `recv`, condvar `wait` — with held classes;
//! * **panic sites and slice indexing** — the lexical scanners from
//!   [`crate::lints`], attributed to their enclosing function.
//!
//! This is not a Rust parser: it is a brace/statement tracker tuned to
//! the rustfmt-shaped code in this workspace, and it over-approximates
//! on purpose (a guard bound through a `match` or `if let` is assumed
//! to live to the end of its enclosing block). `#[cfg(test)]` regions
//! are excluded — tests may panic and lock freely.
//!
//! Guard liveness follows the nested-lock lint's model: an acquisition
//! whose statement is a `let` binding (directly, through `.map_err(…)?`
//! chains, or wrapped in `match`/`if let`) lives until its block closes
//! or an explicit `drop(name)`; any other acquisition is a temporary
//! that dies at the end of its statement.

use crate::lints::{self, RawFinding};
use std::collections::BTreeSet;

/// One parsed function with everything the analyses need.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Crate the file belongs to (`wcds-service`, fixture `store`, …).
    pub crate_name: String,
    /// Path relative to the scan root.
    pub file: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub qual: Option<String>,
    /// Enclosing module names (innermost last), excluding the file.
    pub mods: Vec<String>,
    /// The function's name.
    pub name: String,
    /// 1-based line of the body's opening brace.
    pub line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Call sites in source order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in source order.
    pub acquires: Vec<Acquire>,
    /// Blocking calls in source order.
    pub blocking: Vec<Blocking>,
    /// Panic sites (`unwrap`/`expect`/`panic!`-family) by line.
    pub panic_sites: Vec<Site>,
    /// `x[i]` slice-indexing sites by line.
    pub index_sites: Vec<Site>,
}

impl FnItem {
    /// `file:qual::name` — stable display identity.
    pub fn display(&self) -> String {
        match &self.qual {
            Some(q) => format!("{}::{}", q, self.name),
            None => self.name.clone(),
        }
    }

    /// All names a path qualifier could use to reach this function:
    /// the crate (underscored), enclosing modules, the file stem, and
    /// the `impl` type.
    pub fn containers(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        out.insert(self.crate_name.replace('-', "_"));
        out.extend(self.mods.iter().cloned());
        if let Some(stem) = std::path::Path::new(&self.file)
            .file_stem()
            .and_then(|s| s.to_str())
        {
            if stem != "lib" && stem != "mod" && stem != "main" {
                out.insert(stem.to_string());
            }
        }
        if let Some(q) = &self.qual {
            out.insert(q.clone());
        }
        out
    }
}

/// One call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (the identifier before `(`).
    pub name: String,
    /// Path qualifier: `Foo::bar(` records `Foo`; `Self` is kept
    /// verbatim and resolved against the caller's `impl` type.
    pub qual: Option<String>,
    /// True for `.name(` method syntax.
    pub method: bool,
    /// 1-based line.
    pub line: usize,
    /// Lock classes held when the call runs.
    pub held: Vec<String>,
}

/// One lock acquisition.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock class, derived from the receiver or wrapper argument.
    pub class: String,
    /// 1-based line.
    pub line: usize,
    /// Classes already held at this acquisition (lock-order edges).
    pub held: Vec<String>,
}

/// One blocking call.
#[derive(Debug, Clone)]
pub struct Blocking {
    /// What blocks (`channel recv`, `socket write`, …).
    pub what: &'static str,
    /// 1-based line.
    pub line: usize,
    /// Lock classes held across the call. For condvar `wait(guard)`
    /// the passed guard is already removed (waiting releases it).
    pub held: Vec<String>,
}

/// A panic or slice-index site.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based line.
    pub line: usize,
    /// The lint message from the lexical scanner.
    pub message: String,
}

/// Lock-acquisition tokens. Wrapper-call tokens (no leading `.`) must
/// not be preceded by an identifier character, so definitions and
/// paths don't match.
const ACQUIRE_TOKENS: [&str; 6] =
    [".read()", ".write()", ".lock()", ".get_or_init(", "read_guard(", "write_guard("];

/// Blocking-call tokens, most-specific first. `.read(`/`.write(` with
/// a non-empty argument list are handled separately (empty parens are
/// the `RwLock` acquisitions above).
const BLOCKING_TOKENS: [(&str, &'static str); 12] = [
    (".recv_timeout(", "channel recv_timeout"),
    (".recv()", "channel recv"),
    (".wait_timeout(", "condvar wait_timeout"),
    (".wait(", "condvar wait"),
    (".read_exact(", "socket read"),
    (".read_to_end(", "socket read"),
    (".read_to_string(", "socket read"),
    (".read_line(", "socket read"),
    (".write_all(", "socket write"),
    (".flush()", "socket flush"),
    (".accept()", "socket accept"),
    (".connect(", "socket connect"),
];

/// Blocking tokens in wrapper-call position (checked like wrapper
/// acquisitions: no identifier character before them).
const BLOCKING_FREE_TOKENS: [(&str, &'static str); 2] =
    [("sleep(", "thread sleep"), ("connect_timeout(", "socket connect")];

const KEYWORDS: [&str; 28] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "as", "in",
    "fn", "let", "mut", "ref", "move", "box", "dyn", "impl", "where", "unsafe", "struct", "enum",
    "mod", "use", "pub", "const", "static",
];

/// A live guard in one function's tracker.
#[derive(Debug)]
struct Guard {
    class: String,
    /// Binding name, `None` for a statement temporary.
    binding: Option<String>,
    /// Brace depth at acquisition; dies when depth drops below this.
    depth: usize,
}

enum FrameKind {
    Block,
    Mod(String),
    Impl(String),
    Fn { idx: usize, guards: Vec<Guard> },
}

/// Parses one masked file into its functions.
///
/// `rel` is the path relative to the scan root; `crate_name` the
/// owning crate. Test regions are excluded.
pub fn parse_file(masked: &str, rel: &str, crate_name: &str) -> Vec<FnItem> {
    let excluded = lints::test_region_lines(masked);
    let bytes = masked.as_bytes();
    let mut fns: Vec<FnItem> = Vec::new();
    let mut stack: Vec<FrameKind> = Vec::new();
    let mut header_start = 0usize;
    let mut line = 1usize;
    let mut i = 0usize;

    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'#' if bytes.get(i + 1) == Some(&b'[') => {
                // skip attributes so `#[derive(…)]` isn't a call site
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        b'\n' => line += 1,
                        _ => {}
                    }
                    i += 1;
                }
            }
            b'{' => {
                let header = &masked[header_start..i];
                let kind = classify_header(header, &stack, &mut fns, rel, crate_name, line);
                stack.push(kind);
                header_start = i + 1;
                i += 1;
            }
            b'}' => {
                if let Some(FrameKind::Fn { idx, .. }) = stack.pop() {
                    fns[idx].end_line = line;
                }
                let depth = stack.len();
                if let Some(FrameKind::Fn { guards, .. }) = innermost_fn(&mut stack) {
                    guards.retain(|g| g.depth <= depth);
                }
                header_start = i + 1;
                i += 1;
            }
            b';' => {
                let depth = stack.len();
                if let Some(FrameKind::Fn { guards, .. }) = innermost_fn(&mut stack) {
                    guards.retain(|g| g.binding.is_some() || g.depth != depth);
                }
                header_start = i + 1;
                i += 1;
            }
            b if b >= 0x80 => {
                // skip non-ASCII bytes without slicing mid-character
                i += 1;
            }
            _ => {
                if let Some(tok) = acquire_token_at(masked, i) {
                    let held = held_classes(&stack, None);
                    let class = lock_class(masked, i, tok);
                    let end = guard_expr_end(masked, i, tok);
                    let binding = guard_binding(masked, i, end);
                    let depth = stack.len();
                    if let Some(FrameKind::Fn { idx, guards }) = innermost_fn(&mut stack) {
                        if !excluded.contains(&line) {
                            fns[*idx].acquires.push(Acquire {
                                class: class.clone(),
                                line,
                                held,
                            });
                        }
                        guards.push(Guard { class, binding, depth });
                    }
                    i += tok.len();
                } else if let Some((tok, what)) = blocking_token_at(masked, i) {
                    let exempt = if what.starts_with("condvar") {
                        first_arg_ident(masked, i + tok.len())
                    } else {
                        None
                    };
                    let held = held_classes(&stack, exempt.as_deref());
                    if let Some(FrameKind::Fn { idx, .. }) = innermost_fn(&mut stack) {
                        if !excluded.contains(&line) {
                            fns[*idx].blocking.push(Blocking { what, line, held });
                        }
                    }
                    i += tok.len();
                } else if is_ident_start(bytes[i]) && !prev_is_ident(masked, i) {
                    let start = i;
                    while i < bytes.len() && bytes[i] < 0x80 && lints::is_ident(bytes[i] as char) {
                        i += 1;
                    }
                    let name = &masked[start..i];
                    if name == "drop" && bytes.get(i) == Some(&b'(') {
                        if let Some(inner) = first_arg_ident(masked, i + 1) {
                            if let Some(FrameKind::Fn { guards, .. }) = innermost_fn(&mut stack) {
                                guards.retain(|g| g.binding.as_deref() != Some(inner.as_str()));
                            }
                        }
                        continue;
                    }
                    if let Some(call) =
                        call_at(masked, start, i, name, &stack, line)
                    {
                        if !excluded.contains(&line) {
                            if let Some(FrameKind::Fn { idx, .. }) = innermost_fn(&mut stack) {
                                fns[*idx].calls.push(call);
                            }
                        }
                    }
                } else {
                    i += 1;
                }
            }
        }
    }

    attach_sites(masked, &excluded, &mut fns);
    fns.retain(|f| !excluded.contains(&f.line));
    fns
}

/// The innermost enclosing function frame.
fn innermost_fn(stack: &mut [FrameKind]) -> Option<&mut FrameKind> {
    stack.iter_mut().rev().find(|f| matches!(f, FrameKind::Fn { .. }))
}

/// Lock classes currently held, innermost function only, minus the
/// guard bound to `exempt` (a condvar releases the guard it is handed).
fn held_classes(stack: &[FrameKind], exempt: Option<&str>) -> Vec<String> {
    let Some(FrameKind::Fn { guards, .. }) =
        stack.iter().rev().find(|f| matches!(f, FrameKind::Fn { .. }))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut exempted = false;
    for g in guards {
        if !exempted && exempt.is_some() && g.binding.as_deref() == exempt {
            exempted = true;
            continue;
        }
        if !out.contains(&g.class) {
            out.push(g.class.clone());
        }
    }
    out
}

/// Classifies the text between the previous `;`/`{`/`}` and an opening
/// brace, creating a new [`FnItem`] for function headers.
fn classify_header(
    header: &str,
    stack: &[FrameKind],
    fns: &mut Vec<FnItem>,
    rel: &str,
    crate_name: &str,
    line: usize,
) -> FrameKind {
    if let Some(name) = fn_header_name(header) {
        let qual = stack.iter().rev().find_map(|f| match f {
            FrameKind::Impl(t) => Some(t.clone()),
            _ => None,
        });
        let mods: Vec<String> = stack
            .iter()
            .filter_map(|f| match f {
                FrameKind::Mod(m) => Some(m.clone()),
                _ => None,
            })
            .collect();
        fns.push(FnItem {
            crate_name: crate_name.to_string(),
            file: rel.to_string(),
            qual,
            mods,
            name,
            line,
            end_line: line,
            calls: Vec::new(),
            acquires: Vec::new(),
            blocking: Vec::new(),
            panic_sites: Vec::new(),
            index_sites: Vec::new(),
        });
        return FrameKind::Fn { idx: fns.len() - 1, guards: Vec::new() };
    }
    if has_word(header, "impl") || has_word(header, "trait") {
        if let Some(t) = impl_type(header) {
            return FrameKind::Impl(t);
        }
    }
    if let Some(at) = word_at(header, "mod") {
        let name: String = header[at + 3..]
            .trim_start()
            .chars()
            .take_while(|&c| lints::is_ident(c))
            .collect();
        if !name.is_empty() {
            return FrameKind::Mod(name);
        }
    }
    FrameKind::Block
}

/// The declared name if `header` is a function header: the first word
/// `fn` followed by an identifier (a bare `fn(` is a pointer type).
fn fn_header_name(header: &str) -> Option<String> {
    let mut from = 0;
    while let Some(at) = word_at(&header[from..], "fn") {
        let after = header[from + at + 2..].trim_start();
        let name: String = after.chars().take_while(|&c| lints::is_ident(c)).collect();
        if !name.is_empty() {
            return Some(name);
        }
        from += at + 2;
    }
    None
}

/// Byte offset of the first word-boundary occurrence of `word`.
fn word_at(text: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(off) = text[from..].find(word) {
        let at = from + off;
        let before_ok = at == 0 || !lints::is_ident(text[..at].chars().next_back().unwrap_or(' '));
        let after_ok = text[at + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !lints::is_ident(c));
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

fn has_word(text: &str, word: &str) -> bool {
    word_at(text, word).is_some()
}

/// The subject type of an `impl`/`trait` header: the identifier after
/// `for` if present (`impl Trait for Type`), else the first identifier
/// after the keyword and its generic parameters.
fn impl_type(header: &str) -> Option<String> {
    if let Some(at) = word_at(header, "for") {
        let name = first_type_ident(&header[at + 3..]);
        if name.is_some() {
            return name;
        }
    }
    let kw = word_at(header, "impl").or_else(|| word_at(header, "trait"))?;
    let mut rest = header[kw..].splitn(2, char::is_whitespace).nth(1).unwrap_or("");
    // skip leading generics: `impl<T: Clone> Foo<T>`
    let trimmed = header[kw..].trim_start_matches(|c: char| lints::is_ident(c));
    if trimmed.starts_with('<') {
        let mut depth = 0i32;
        for (j, c) in trimmed.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        rest = &trimmed[j + 1..];
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    first_type_ident(rest)
}

/// The last identifier of the first `::`-path in `text`, skipping
/// references and whitespace — `&mut fmt::Display` yields `Display`.
fn first_type_ident(text: &str) -> Option<String> {
    let rest = text.trim_start_matches(|c: char| c.is_whitespace() || c == '&' || c == '\'');
    let mut last = None;
    let mut chars = rest.char_indices().peekable();
    while let Some((j, c)) = chars.next() {
        if lints::is_ident(c) {
            let word: String = rest[j..].chars().take_while(|&c| lints::is_ident(c)).collect();
            for _ in 1..word.len() {
                chars.next();
            }
            let after = &rest[j + word.len()..];
            if word == "mut" || word == "dyn" {
                continue;
            }
            last = Some(word);
            if !after.starts_with("::") {
                break;
            }
        } else if c == ':' || c == '<' || (c.is_whitespace() && last.is_none()) {
            continue;
        } else {
            break;
        }
    }
    last
}

/// The acquisition token at byte `i`, if any.
fn acquire_token_at(masked: &str, i: usize) -> Option<&'static str> {
    for tok in ACQUIRE_TOKENS {
        if masked[i..].starts_with(tok) {
            if !tok.starts_with('.') && (prev_is_ident(masked, i) || prev_word_is_fn(masked, i)) {
                return None;
            }
            return Some(tok);
        }
    }
    None
}

/// The blocking token at byte `i`, if any. `.read(`/`.write(` count
/// only with a non-empty argument list (IO, not `RwLock`).
fn blocking_token_at(masked: &str, i: usize) -> Option<(&'static str, &'static str)> {
    for (tok, what) in BLOCKING_TOKENS {
        if masked[i..].starts_with(tok) {
            return Some((tok, what));
        }
    }
    for (tok, what) in BLOCKING_FREE_TOKENS {
        if masked[i..].starts_with(tok)
            && !prev_is_ident(masked, i)
            && !prev_word_is_fn(masked, i)
        {
            return Some((tok, what));
        }
    }
    for (tok, what) in [(".read(", "socket read"), (".write(", "socket write")] {
        if masked[i..].starts_with(tok) {
            let after = masked[i + tok.len()..].trim_start();
            if !after.starts_with(')') {
                return Some((tok, what));
            }
        }
    }
    None
}

/// One past the end of the acquisition expression: the matched closing
/// paren of a call token, then trailing `?`s and whitespace.
fn guard_expr_end(masked: &str, i: usize, tok: &str) -> usize {
    let bytes = masked.as_bytes();
    let mut j = i + tok.len();
    if tok.ends_with('(') {
        let mut depth = 1u32;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    skip_ws_q(masked, j)
}

fn skip_ws_q(masked: &str, mut j: usize) -> usize {
    while let Some(c) = masked[j..].chars().next() {
        if c.is_whitespace() || c == '?' {
            j += c.len_utf8();
        } else {
            break;
        }
    }
    j
}

/// The binding a guard outlives its statement under, or `None` for a
/// temporary. The guard survives when the acquisition reaches the end
/// of a `let` statement directly, through `.map_err(…)?` chains, or
/// wrapped in a `match`/`if let` whose arms yield it.
fn guard_binding(masked: &str, i: usize, mut end: usize) -> Option<String> {
    loop {
        if masked[end..].starts_with(".map_err(") {
            let mut depth = 0u32;
            let bytes = masked.as_bytes();
            let mut j = end + ".map_err(".len() - 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            end = skip_ws_q(masked, j);
        } else {
            break;
        }
    }
    if masked[end..].starts_with(';') || masked[end..].starts_with('{') {
        let stmt_start = masked[..i].rfind([';', '{', '}']).map_or(0, |p| p + 1);
        let stmt = &masked[stmt_start..i];
        let after_let = stmt.split_once("let ")?.1.trim_start();
        let mut rest = after_let.strip_prefix("mut ").unwrap_or(after_let).trim_start();
        // descend into `Ok(g)` / `Some(g)` patterns
        for wrapper in ["Ok(", "Some("] {
            if let Some(inner) = rest.strip_prefix(wrapper) {
                rest = inner.trim_start();
            }
        }
        let name: String = rest.chars().take_while(|&c| lints::is_ident(c)).collect();
        if name.is_empty() || name == "_" {
            None
        } else {
            Some(name)
        }
    } else {
        None
    }
}

/// The lock class of an acquisition: the last meaningful identifier of
/// the receiver (`entry.topo.read()` → `topo`, `self.shard(n).read()`
/// → `shard`) or of a wrapper's argument (`read_guard(&e.topo)` →
/// `topo`).
fn lock_class(masked: &str, i: usize, tok: &str) -> String {
    let text = if tok.starts_with('.') {
        receiver_text(masked, i)
    } else {
        let close = guard_call_close(masked, i + tok.len());
        masked[i + tok.len()..close].to_string()
    };
    class_from_expr(&text).unwrap_or_else(|| "lock".to_string())
}

/// The receiver chain before a `.token` at byte `i`, scanned backward
/// over identifiers, `.`/`::`, and balanced `(…)`/`[…]`.
fn receiver_text(masked: &str, i: usize) -> String {
    let bytes = masked.as_bytes();
    let mut j = i;
    while j > 0 {
        let c = bytes[j - 1];
        if lints::is_ident(c as char) || c == b'.' || c == b':' {
            j -= 1;
        } else if c == b')' || c == b']' {
            let (open, close) = if c == b')' { (b'(', b')') } else { (b'[', b']') };
            let mut depth = 0i32;
            while j > 0 {
                let d = bytes[j - 1];
                if d == close {
                    depth += 1;
                } else if d == open {
                    depth -= 1;
                    if depth == 0 {
                        j -= 1;
                        break;
                    }
                }
                j -= 1;
            }
        } else {
            break;
        }
    }
    masked[j..i].to_string()
}

/// Matched close paren of a wrapper call whose `(` is at `open - 1`.
fn guard_call_close(masked: &str, open: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 1i32;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Derives a lock class from an expression: the last top-level path
/// component (field, binding, or method name — argument lists are
/// skipped), ignoring `self`/`mut`. `entry.topo` → `topo`,
/// `s.shard(n)` → `shard`, `self.plan` → `plan`.
fn class_from_expr(text: &str) -> Option<String> {
    let mut last = None;
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if is_ident_start(bytes[i]) && !prev_is_ident(text, i) {
            let start = i;
            while i < bytes.len() && bytes[i] < 0x80 && lints::is_ident(bytes[i] as char) {
                i += 1;
            }
            let word = &text[start..i];
            if word == "self" || word == "mut" {
                continue;
            }
            last = Some(word.to_string());
            if bytes.get(i) == Some(&b'(') {
                // skip the argument list — idents inside it are
                // arguments, not path components of the receiver
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    last
}

/// The first identifier in an argument list starting at byte `at`
/// (just after the opening paren) — the guard a condvar `wait`
/// releases.
fn first_arg_ident(masked: &str, at: usize) -> Option<String> {
    let rest = masked[at..].trim_start().trim_start_matches(['&', '*']);
    let name: String = rest.chars().take_while(|&c| lints::is_ident(c)).collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || (b as char).is_ascii_alphabetic()
}

fn prev_is_ident(masked: &str, i: usize) -> bool {
    masked[..i].chars().next_back().is_some_and(lints::is_ident)
}

/// True when the word before byte `i` (skipping whitespace) is `fn` —
/// the identifier at `i` is a definition, not a call.
fn prev_word_is_fn(masked: &str, i: usize) -> bool {
    let head = masked[..i].trim_end();
    head.ends_with("fn")
        && !head[..head.len() - 2]
            .chars()
            .next_back()
            .is_some_and(lints::is_ident)
}

/// Builds a [`CallSite`] for the identifier spanning `start..end`, or
/// `None` when it isn't a call (keyword, macro, definition, no parens).
fn call_at(
    masked: &str,
    start: usize,
    end: usize,
    name: &str,
    stack: &[FrameKind],
    line: usize,
) -> Option<CallSite> {
    if KEYWORDS.contains(&name) || prev_word_is_fn(masked, start) {
        return None;
    }
    let bytes = masked.as_bytes();
    let mut j = end;
    // turbofish: `collect::<Vec<_>>(…)`
    if masked[j..].starts_with("::<") {
        let mut depth = 0i32;
        let mut k = j + 2;
        while k < bytes.len() {
            match bytes[k] {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        j = k;
    }
    if bytes.get(j) != Some(&b'(') {
        return None;
    }
    if bytes.get(end) == Some(&b'!') {
        return None; // macro
    }
    let head = &masked[..start];
    let (qual, method) = if head.ends_with("::") {
        let q: String = head[..head.len() - 2]
            .chars()
            .rev()
            .take_while(|&c| lints::is_ident(c))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if q.is_empty() {
            (None, false)
        } else {
            (Some(q), false)
        }
    } else if head.ends_with('.') {
        (None, true)
    } else {
        (None, false)
    };
    Some(CallSite {
        name: name.to_string(),
        qual,
        method,
        line,
        held: held_classes(stack, None),
    })
}

/// Runs the lexical panic/slice-index scanners and attributes each hit
/// to the innermost function whose body spans its line.
fn attach_sites(masked: &str, excluded: &BTreeSet<usize>, fns: &mut [FnItem]) {
    let mut raw: Vec<RawFinding> = Vec::new();
    for (idx, line) in masked.lines().enumerate() {
        let line_no = idx + 1;
        if excluded.contains(&line_no) {
            continue;
        }
        lints::scan_panic_sites(line, line_no, &mut raw);
        lints::scan_slice_index(line, line_no, &mut raw);
    }
    for f in raw {
        // innermost = the latest-starting function containing the line
        let owner = fns
            .iter_mut()
            .filter(|it| it.line <= f.line && f.line <= it.end_line)
            .max_by_key(|it| it.line);
        if let Some(it) = owner {
            let site = Site { line: f.line, message: f.message };
            if f.lint == "panic-site" {
                it.panic_sites.push(site);
            } else {
                it.index_sites.push(site);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_file(&lex(src).masked, "crates/x/src/a.rs", "x")
    }

    #[test]
    fn extracts_functions_with_impl_and_mod_context() {
        let src = "mod inner {\n  impl Foo {\n    pub fn bar(&self) -> u8 { 0 }\n  }\n  fn free() {}\n}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "bar");
        assert_eq!(fns[0].qual.as_deref(), Some("Foo"));
        assert_eq!(fns[0].mods, vec!["inner".to_string()]);
        assert_eq!(fns[1].name, "free");
        assert!(fns[1].qual.is_none());
    }

    #[test]
    fn trait_impl_uses_the_subject_type() {
        let src = "impl fmt::Display for Edge {\n  fn fmt(&self) -> u8 { 1 }\n}\n";
        let fns = parse(src);
        assert_eq!(fns[0].qual.as_deref(), Some("Edge"));
    }

    #[test]
    fn records_calls_with_qualifiers() {
        let src = "fn f() {\n  helper(1);\n  util::go(2);\n  x.method(3);\n  Self::own();\n  mac!(nope);\n}\n";
        let fns = parse(src);
        let calls: Vec<(&str, Option<&str>, bool)> = fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.qual.as_deref(), c.method))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("helper", None, false),
                ("go", Some("util"), false),
                ("method", None, true),
                ("own", Some("Self"), false),
            ]
        );
    }

    #[test]
    fn tracks_guards_and_lock_classes() {
        let src = "fn f(e: &E) {\n  let t = e.topo.write();\n  let p = e.published.write();\n  go();\n}\n";
        let fns = parse(src);
        let acq: Vec<(&str, &[String])> = fns[0]
            .acquires
            .iter()
            .map(|a| (a.class.as_str(), a.held.as_slice()))
            .collect();
        assert_eq!(acq.len(), 2);
        assert_eq!(acq[0], ("topo", &[][..]));
        assert_eq!(acq[1].0, "published");
        assert_eq!(acq[1].1, &["topo".to_string()]);
        assert_eq!(fns[0].calls[0].held, vec!["topo".to_string(), "published".to_string()]);
    }

    #[test]
    fn temporaries_die_at_statement_end() {
        let src = "fn f(e: &E) {\n  let n = e.topo.read().len();\n  go();\n}\n";
        let fns = parse(src);
        assert!(fns[0].calls.iter().find(|c| c.name == "go").unwrap().held.is_empty());
    }

    #[test]
    fn match_bound_guard_survives_the_statement() {
        let src = "fn f(rx: &M) {\n  let guard = match rx.lock() {\n    Ok(g) => g,\n    Err(_) => return,\n  };\n  guard.recv_timeout(t);\n}\n";
        let fns = parse(src);
        assert_eq!(fns[0].blocking.len(), 1);
        assert_eq!(fns[0].blocking[0].what, "channel recv_timeout");
        assert_eq!(fns[0].blocking[0].held, vec!["rx".to_string()]);
    }

    #[test]
    fn condvar_wait_releases_the_passed_guard() {
        let src = "fn f(e: &E) {\n  let mut table = e.leases.lock().map_err(|_| x)?;\n  table = e.cv.wait(table).map_err(|_| x)?;\n}\n";
        let fns = parse(src);
        assert_eq!(fns[0].blocking.len(), 1);
        assert!(fns[0].blocking[0].held.is_empty(), "{:?}", fns[0].blocking[0].held);
    }

    #[test]
    fn wrapper_acquisitions_classify_by_argument() {
        let src = "fn f(s: &S) {\n  let t = read_guard(&s.entry.topo)?;\n  let g = write_guard(s.shard(name))?;\n}\n";
        let fns = parse(src);
        assert_eq!(fns[0].acquires[0].class, "topo");
        assert_eq!(fns[0].acquires[1].class, "shard");
    }

    #[test]
    fn io_read_with_args_blocks_but_rwlock_read_does_not() {
        let src = "fn f(s: &mut T, l: &L) {\n  s.read(&mut buf);\n  let g = l.topo.read();\n}\n";
        let fns = parse(src);
        assert_eq!(fns[0].blocking.len(), 1);
        assert_eq!(fns[0].blocking[0].what, "socket read");
        assert_eq!(fns[0].acquires.len(), 1);
    }

    #[test]
    fn drop_releases_a_named_guard() {
        let src = "fn f(e: &E) {\n  let t = e.topo.write();\n  drop(t);\n  go();\n}\n";
        let fns = parse(src);
        // drop(t) is itself a call; the `go()` call afterwards must
        // not see `topo` held
        let go = fns[0].calls.iter().find(|c| c.name == "go").unwrap();
        assert!(go.held.is_empty(), "{:?}", go.held);
    }

    #[test]
    fn attaches_panic_and_index_sites_to_the_enclosing_fn() {
        let src = "fn a(x: Option<u8>) -> u8 { x.unwrap() }\nfn b(v: &[u8], i: usize) -> u8 { v[i] }\n";
        let fns = parse(src);
        assert_eq!(fns[0].panic_sites.len(), 1);
        assert!(fns[0].index_sites.is_empty());
        assert_eq!(fns[1].index_sites.len(), 1);
    }

    #[test]
    fn test_regions_are_excluded() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "a");
    }

    #[test]
    fn get_or_init_holds_its_class_across_the_closure() {
        let src = "fn plan(s: &S) {\n  s.plan.get_or_init(|| build(&s.w));\n}\n";
        let fns = parse(src);
        assert_eq!(fns[0].acquires.len(), 1);
        assert_eq!(fns[0].acquires[0].class, "plan");
        let build = fns[0].calls.iter().find(|c| c.name == "build").unwrap();
        assert_eq!(build.held, vec!["plan".to_string()]);
    }
}
