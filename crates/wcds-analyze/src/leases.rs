//! Exhaustive interleaving checker for the region-lease admission
//! protocol behind concurrent mutations.
//!
//! The service store schedules mutations through
//! `wcds_core::maintenance::lease::LeaseTable`: a mutation claims the
//! grid cells covering its repair footprint, the table admits
//! non-conflicting claims together (all-or-nothing, FIFO per cell),
//! and the store wraps the table in a mutex + condvar
//! (`wcds-service/src/store.rs::{acquire_lease, release_lease}`).
//! The table itself is a pure state machine, so this checker drives
//! the **actual production admission/commit code** — not a model of
//! it — under every bounded interleaving of claimant threads
//! ([`wcds_sim::interleave`]).
//!
//! After every step of every schedule, four safety properties are
//! asserted:
//!
//! 1. **Isolation** — no two threads are inside critical sections
//!    with conflicting scopes (the lost-update shape leases exist to
//!    prevent);
//! 2. **Grant backing** — a thread inside its critical section still
//!    holds its grant (nothing revoked it mid-repair);
//! 3. **FIFO** — conflicting claims commit in ticket (arrival) order:
//!    no barging past an older waiter on a shared cell;
//! 4. **Table consistency** — [`LeaseTable::check_invariants`] holds
//!    (granted/waiting disjoint, no conflicting grants, queue in
//!    ticket order).
//!
//! Liveness rides along for free: a schedule where unfinished threads
//! are all blocked is reported as a deadlock by the explorer, so a
//! clean run doubles as a proof that the all-or-nothing acquisition
//! really is deadlock-free over these scenarios. Two witness
//! scenarios pin the protocol's *intent*: disjoint claims must
//! actually overlap in some schedule (no silent over-serialization),
//! and conflicting claims must never overlap in any. Two deliberately
//! broken claimant variants (entering the critical section without
//! acquiring; releasing the lease before the critical section ends)
//! **must** be caught — proving the checker can see the bugs it
//! guards against.

use std::fmt::Write as _;
use wcds_core::maintenance::lease::{Admission, LeaseTable, Scope, Ticket};
use wcds_sim::interleave::{explore, Explored, InterleaveError, Interleaved};

/// A claim over one sorted cell list (test vocabulary: single cells
/// are enough to express every conflict shape).
fn cells(list: &[(i64, i64)]) -> Scope {
    let mut v = list.to_vec();
    v.sort_unstable();
    v.dedup();
    Scope::Cells(v)
}

/// One thread currently inside its critical section.
#[derive(Debug, Clone)]
pub struct CsEntry {
    /// Index of the actor in the scenario's thread list.
    pub actor: usize,
    /// The grant backing the entry — `None` only for the broken
    /// variants that enter without (or after giving up) a grant.
    pub ticket: Option<Ticket>,
    /// What the repair inside claims to touch.
    pub scope: Scope,
}

/// Shared state: the real lease table plus the observation log the
/// invariants read.
#[derive(Debug, Clone)]
pub struct LeaseModel {
    /// The production admission state machine, driven directly.
    pub table: LeaseTable,
    /// Threads currently inside critical sections.
    pub in_cs: Vec<CsEntry>,
    /// Commit log: `(ticket, scope)` in commit order.
    pub commits: Vec<(Ticket, Scope)>,
}

impl LeaseModel {
    fn new() -> Self {
        Self { table: LeaseTable::new(), in_cs: Vec::new(), commits: Vec::new() }
    }
}

/// Claimant variant a thread runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Acquire → wait for grant → critical section → release.
    Faithful,
    /// Bug seed: walk straight into the critical section without
    /// touching the table (a mutation path that forgets the lease).
    SkipAcquire,
    /// Bug seed: release the lease *before* entering the critical
    /// section (repair outliving its grant).
    EarlyRelease,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// Before `acquire`.
    Start,
    /// Queued; blocked until the table grants the ticket (the store's
    /// condvar wait, modelled via [`Interleaved::enabled`]).
    Waiting(Ticket),
    /// Holding the grant; next step enters the critical section.
    Granted(Ticket),
    /// Inside the critical section; next step commits and releases.
    InCs(Option<Ticket>),
    Done,
}

/// One thread of the model.
#[derive(Debug, Clone)]
enum Actor {
    /// A mutation: claim `scope`, repair, release.
    Claimant { id: usize, scope: Scope, phase: Phase, mode: Mode },
    /// A mutation that withdraws instead of repairing: releases a
    /// grant unused, aborts a queued claim ([`LeaseTable::abort`]).
    /// Never enters a critical section, so it carries no actor id.
    Aborter { scope: Scope, phase: Phase },
    /// A lock-free thread of `n` no-op steps (scheduler coverage
    /// probe).
    Free { left: u8 },
}

fn claimant(id: usize, scope: Scope) -> Actor {
    Actor::Claimant { id, scope, phase: Phase::Start, mode: Mode::Faithful }
}

fn broken(id: usize, scope: Scope, mode: Mode) -> Actor {
    Actor::Claimant { id, scope, phase: Phase::Start, mode }
}

fn aborter(scope: Scope) -> Actor {
    Actor::Aborter { scope, phase: Phase::Start }
}

impl Interleaved for Actor {
    type Shared = LeaseModel;

    fn done(&self) -> bool {
        match self {
            Actor::Claimant { phase, .. } | Actor::Aborter { phase, .. } => {
                *phase == Phase::Done
            }
            Actor::Free { left } => *left == 0,
        }
    }

    fn enabled(&self, s: &LeaseModel) -> bool {
        match self {
            // the condvar wait: a queued claimant is runnable only
            // once a release/abort promoted its ticket
            Actor::Claimant { phase: Phase::Waiting(t), .. } => s.table.is_granted(*t),
            _ => true,
        }
    }

    fn step(&mut self, s: &mut LeaseModel) {
        match self {
            Actor::Claimant { id, scope, phase, mode } => {
                *phase = claimant_step(*id, scope, phase.clone(), *mode, s);
            }
            Actor::Aborter { scope, phase } => {
                *phase = match phase.clone() {
                    Phase::Start => match s.table.acquire(scope.clone()) {
                        (t, Admission::Granted) => Phase::Granted(t),
                        (t, Admission::Queued) => Phase::Waiting(t),
                    },
                    // withdraw without repairing: release the unused
                    // grant, or abort the queued claim — both must
                    // promote whoever was blocked behind it
                    Phase::Granted(t) => {
                        s.table.release(t);
                        Phase::Done
                    }
                    Phase::Waiting(t) => {
                        s.table.abort(t);
                        Phase::Done
                    }
                    p @ (Phase::InCs(_) | Phase::Done) => p,
                }
            }
            Actor::Free { left } => *left = left.saturating_sub(1),
        }
    }
}

/// One step of a claimant, mirroring the store's
/// `acquire_lease` → repair-under-exclusive-access → `release_lease`
/// sequence.
fn claimant_step(id: usize, scope: &Scope, phase: Phase, mode: Mode, s: &mut LeaseModel) -> Phase {
    match (phase, mode) {
        (Phase::Start, Mode::SkipAcquire) => {
            // BUG variant: repair with no lease at all
            s.in_cs.push(CsEntry { actor: id, ticket: None, scope: scope.clone() });
            Phase::InCs(None)
        }
        (Phase::Start, _) => match s.table.acquire(scope.clone()) {
            (t, Admission::Granted) => Phase::Granted(t),
            (t, Admission::Queued) => Phase::Waiting(t),
        },
        // enabled() held this thread until the grant arrived
        (Phase::Waiting(t), _) => Phase::Granted(t),
        (Phase::Granted(t), Mode::EarlyRelease) => {
            // BUG variant: give the lease back, then repair anyway
            s.table.release(t);
            s.in_cs.push(CsEntry { actor: id, ticket: None, scope: scope.clone() });
            Phase::InCs(None)
        }
        (Phase::Granted(t), _) => {
            s.in_cs.push(CsEntry { actor: id, ticket: Some(t), scope: scope.clone() });
            Phase::InCs(Some(t))
        }
        (Phase::InCs(t), _) => {
            s.in_cs.retain(|e| e.actor != id);
            if let Some(t) = t {
                s.commits.push((t, scope.clone()));
                s.table.release(t);
            }
            Phase::Done
        }
        (Phase::Done, _) => Phase::Done,
    }
}

/// The safety properties, checked after every step of every schedule.
fn invariant(s: &LeaseModel, _actors: &[Actor], _schedule: &[usize]) -> Result<(), String> {
    s.table.check_invariants()?;
    for (i, a) in s.in_cs.iter().enumerate() {
        for b in s.in_cs.iter().skip(i + 1) {
            if a.scope.conflicts(&b.scope) {
                return Err(format!(
                    "isolation violated: threads {} and {} inside conflicting critical sections",
                    a.actor, b.actor
                ));
            }
        }
        if let Some(t) = a.ticket {
            if !s.table.is_granted(t) {
                return Err(format!(
                    "thread {} in its critical section but ticket {t} is not granted",
                    a.actor
                ));
            }
        }
    }
    for (i, (ta, sa)) in s.commits.iter().enumerate() {
        for (tb, sb) in s.commits.iter().take(i) {
            if sa.conflicts(sb) && ta < tb {
                return Err(format!(
                    "FIFO violated: ticket {ta} committed after conflicting younger ticket {tb}"
                ));
            }
        }
    }
    Ok(())
}

/// Outcome of one explored scenario.
#[derive(Debug)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: &'static str,
    /// Distinct complete schedules explored (0 for seeded-bug rows).
    pub schedules: u64,
    /// Total steps executed across schedules.
    pub steps: u64,
}

/// Outcome of the full lease-checker run.
#[derive(Debug, Default)]
pub struct LeaseReport {
    /// Per-scenario exploration counts.
    pub scenarios: Vec<Scenario>,
    /// Sum of schedules across scenarios.
    pub total_schedules: u64,
}

/// Runs every scenario. `Err` carries a violation report (schedule +
/// property) — a clean tree returns `Ok`.
///
/// # Errors
///
/// The first scenario whose exploration finds a violated invariant,
/// deadlock, or budget blow-up, rendered with its scheduling prefix —
/// a witness scenario that fails to reach (or exceed) its expected
/// concurrency — or a broken-variant scenario that the checker
/// *fails* to catch.
pub fn run() -> Result<LeaseReport, String> {
    let mut report = LeaseReport::default();

    // scheduler coverage probe: two independent 4-step threads have
    // exactly C(8, 4) = 70 interleavings; all must be visited
    let explored = check(
        "coverage: 2 free threads × 4 steps",
        &[Actor::Free { left: 4 }, Actor::Free { left: 4 }],
        &mut report,
    )?;
    if explored.schedules != 70 {
        return Err(format!(
            "coverage probe explored {} schedules, expected C(8,4) = 70 — \
             the scheduler is not exhaustive",
            explored.schedules
        ));
    }

    // witness: disjoint claims MUST overlap in some schedule — the
    // admission protocol may not silently serialize everything...
    check_width(
        "2 disjoint claimants (must overlap)",
        &[claimant(0, cells(&[(0, 0)])), claimant(1, cells(&[(9, 9)]))],
        Width::Reaches(2),
        &mut report,
    )?;
    // ...and conflicting claims must NEVER overlap in any schedule
    check_width(
        "2 conflicting claimants (never overlap)",
        &[claimant(0, cells(&[(0, 0), (1, 0)])), claimant(1, cells(&[(1, 0)]))],
        Width::Caps(1),
        &mut report,
    )?;
    // the same pair of witnesses for site-form claims (`Scope::Blocks`,
    // the shape the store actually ships): sites beyond Chebyshev
    // distance 2·CLAIM_RADIUS_CELLS = 16 must overlap, sites within it
    // must serialize
    check_width(
        "2 disjoint block claimants (must overlap)",
        &[
            claimant(0, Scope::Blocks(vec![(0, 0)])),
            claimant(1, Scope::Blocks(vec![(40, 40)])),
        ],
        Width::Reaches(2),
        &mut report,
    )?;
    check_width(
        "2 conflicting block claimants (never overlap)",
        &[
            claimant(0, Scope::Blocks(vec![(0, 0)])),
            claimant(1, Scope::Blocks(vec![(10, 10)])),
        ],
        Width::Caps(1),
        &mut report,
    )?;

    let scenarios: &[(&'static str, Vec<Actor>)] = &[
        (
            "3 claimants on one cell (total order)",
            vec![
                claimant(0, cells(&[(0, 0)])),
                claimant(1, cells(&[(0, 0)])),
                claimant(2, cells(&[(0, 0)])),
            ],
        ),
        (
            "conflict chain a–b, b–c; a, c disjoint",
            vec![
                claimant(0, cells(&[(0, 0)])),
                claimant(1, cells(&[(0, 0), (5, 5)])),
                claimant(2, cells(&[(5, 5)])),
            ],
        ),
        (
            "leave (Scope::All) vs 2 disjoint cell claims",
            vec![
                claimant(0, Scope::All),
                claimant(1, cells(&[(0, 0)])),
                claimant(2, cells(&[(9, 9)])),
            ],
        ),
        (
            "2 conflicting claimants vs a free thread",
            vec![
                claimant(0, cells(&[(2, 2)])),
                claimant(1, cells(&[(2, 2)])),
                Actor::Free { left: 3 },
            ],
        ),
        (
            "aborter between a holder and a waiter",
            vec![
                claimant(0, cells(&[(0, 0)])),
                aborter(cells(&[(0, 0), (2, 2)])),
                claimant(2, cells(&[(2, 2)])),
            ],
        ),
        (
            "4 claimants, two independent conflict pairs",
            vec![
                claimant(0, cells(&[(0, 0)])),
                claimant(1, cells(&[(0, 0)])),
                claimant(2, cells(&[(9, 9)])),
                claimant(3, cells(&[(9, 9)])),
            ],
        ),
    ];
    for (name, actors) in scenarios {
        check(name, actors, &mut report)?;
    }

    // sensitivity: the broken variants MUST be caught
    expect_caught(
        "broken: critical section without acquire",
        &[
            claimant(0, cells(&[(0, 0)])),
            broken(1, cells(&[(0, 0)]), Mode::SkipAcquire),
        ],
        "isolation violated",
        &mut report,
    )?;
    expect_caught(
        "broken: lease released before the critical section",
        &[
            broken(0, cells(&[(0, 0)]), Mode::EarlyRelease),
            claimant(1, cells(&[(0, 0)])),
        ],
        "isolation violated",
        &mut report,
    )?;

    Ok(report)
}

fn check(
    name: &'static str,
    actors: &[Actor],
    report: &mut LeaseReport,
) -> Result<Explored, String> {
    let explored = explore(&LeaseModel::new(), actors, &mut invariant)
        .map_err(|e| render(name, &e))?;
    report.total_schedules += explored.schedules;
    report.scenarios.push(Scenario { name, schedules: explored.schedules, steps: explored.steps });
    Ok(explored)
}

/// Expected critical-section width of a witness scenario.
enum Width {
    /// Some schedule must reach this many concurrent critical
    /// sections (true concurrency).
    Reaches(usize),
    /// No schedule may exceed this width (full serialization).
    Caps(usize),
}

/// Explores a scenario while tracking the widest critical-section
/// overlap seen across all schedules, then checks it against `width`.
fn check_width(
    name: &'static str,
    actors: &[Actor],
    width: Width,
    report: &mut LeaseReport,
) -> Result<(), String> {
    let mut widest = 0usize;
    let mut watch = |s: &LeaseModel, a: &[Actor], sched: &[usize]| {
        widest = widest.max(s.in_cs.len());
        invariant(s, a, sched)
    };
    let explored =
        explore(&LeaseModel::new(), actors, &mut watch).map_err(|e| render(name, &e))?;
    match width {
        Width::Reaches(n) if widest < n => {
            return Err(format!(
                "scenario `{name}`: expected some schedule to run {n} critical sections \
                 concurrently, widest seen was {widest} — the protocol over-serializes"
            ));
        }
        Width::Caps(n) if widest > n => {
            return Err(format!(
                "scenario `{name}`: expected at most {n} concurrent critical section(s), \
                 some schedule reached {widest}"
            ));
        }
        _ => {}
    }
    report.total_schedules += explored.schedules;
    report.scenarios.push(Scenario { name, schedules: explored.schedules, steps: explored.steps });
    Ok(())
}

/// Explores a deliberately broken variant and demands the checker
/// catch it with a message containing `expect_in_message`.
fn expect_caught(
    name: &'static str,
    actors: &[Actor],
    expect_in_message: &str,
    report: &mut LeaseReport,
) -> Result<(), String> {
    match explore(&LeaseModel::new(), actors, &mut invariant) {
        Err(InterleaveError::InvariantViolated { message, .. })
            if message.contains(expect_in_message) =>
        {
            report.scenarios.push(Scenario { name, schedules: 0, steps: 0 });
            Ok(())
        }
        Err(e) => Err(format!(
            "{name}: caught the wrong failure (wanted `{expect_in_message}`): {}",
            render(name, &e)
        )),
        Ok(_) => Err(format!(
            "{name}: checker sensitivity failure — the seeded bug was NOT caught"
        )),
    }
}

fn render(name: &str, e: &InterleaveError) -> String {
    let mut out = format!("scenario `{name}`: ");
    match e {
        InterleaveError::InvariantViolated { schedule, message } => {
            let _ = write!(out, "invariant violated after schedule {schedule:?}: {message}");
        }
        InterleaveError::Deadlock { schedule, blocked } => {
            let _ = write!(out, "deadlock after schedule {schedule:?}; blocked threads {blocked:?}");
        }
        InterleaveError::BudgetExhausted { budget } => {
            let _ = write!(out, "step budget {budget} exhausted");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_pass_and_cover_at_least_70_schedules() {
        let report = match run() {
            Ok(r) => r,
            Err(e) => panic!("lease checker found a violation: {e}"),
        };
        assert!(
            report.total_schedules >= 70,
            "only {} schedules explored",
            report.total_schedules
        );
        assert!(report.scenarios.len() >= 10, "only {} scenarios", report.scenarios.len());
    }

    #[test]
    fn solo_claimant_acquires_repairs_releases() {
        let mut s = LeaseModel::new();
        let mut c = claimant(0, cells(&[(0, 0)]));
        while !c.done() {
            assert!(c.enabled(&s));
            c.step(&mut s);
            invariant(&s, &[], &[]).unwrap();
        }
        assert_eq!(s.table.in_flight(), 0);
        assert_eq!(s.table.queued(), 0);
        assert_eq!(s.commits.len(), 1);
        assert!(s.in_cs.is_empty());
    }

    #[test]
    fn queued_claimant_is_disabled_until_the_holder_releases() {
        let mut s = LeaseModel::new();
        let mut a = claimant(0, cells(&[(0, 0)]));
        let mut b = claimant(1, cells(&[(0, 0)]));
        a.step(&mut s); // a acquires (granted)
        b.step(&mut s); // b acquires (queued)
        assert!(!b.enabled(&s), "b must block while a holds the cell");
        a.step(&mut s); // a enters its critical section
        assert!(!b.enabled(&s));
        a.step(&mut s); // a commits and releases → b promoted
        assert!(b.enabled(&s), "release must wake b");
        while !b.done() {
            b.step(&mut s);
            invariant(&s, &[], &[]).unwrap();
        }
        assert_eq!(s.commits.len(), 2);
    }

    #[test]
    fn disjoint_claimants_can_both_be_inside_their_critical_sections() {
        let mut s = LeaseModel::new();
        let mut a = claimant(0, cells(&[(0, 0)]));
        let mut b = claimant(1, cells(&[(9, 9)]));
        a.step(&mut s);
        b.step(&mut s);
        a.step(&mut s);
        b.step(&mut s);
        assert_eq!(s.in_cs.len(), 2, "disjoint scopes repair concurrently");
        invariant(&s, &[], &[]).unwrap();
    }
}
