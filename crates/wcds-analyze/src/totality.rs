//! Decoder totality harness: the wire decoders never panic, and what
//! they accept round-trips.
//!
//! `wcds_service::protocol` promises total decoding — hostile bytes
//! come back as typed [`WireError`]s, never panics. This module
//! *demonstrates* it by structure-aware enumeration:
//!
//! * **seeds** — canonical encodings of every request and response
//!   variant;
//! * **truncations** — every prefix of every seed;
//! * **point mutations** — every byte of every seed overwritten with
//!   boundary values (`0x00`, `0x01`, `0x7f`, `0xff`, bit-flipped);
//! * **tag sweep** — all 256 discriminants in the tag position;
//! * **length splices** — 8-byte hostile lengths (`u64::MAX`,
//!   `1 << 40`) spliced after the header, where string/vec length
//!   prefixes live;
//! * **exhaustive small frames** — every frame of length ≤ 2 over all
//!   256 byte values, and length 3 over a protocol-relevant alphabet.
//!
//! Every candidate runs through both [`Request::decode`] and
//! [`Response::decode`] under `catch_unwind`; a panic fails the run
//! with the offending bytes. An accepted decode must **round-trip**:
//! re-encoding and re-decoding yields the same value (byte identity is
//! deliberately not required — e.g. any non-zero bool byte decodes to
//! `true` and re-encodes as `1`).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use wcds_service::protocol::{
    Mutation, Request, Response, TopologyStats, WireError, PROTOCOL_VERSION,
};

/// Outcome of a totality run.
#[derive(Debug, Default)]
pub struct TotalityReport {
    /// Frame bodies pushed through both decoders.
    pub frames_tried: u64,
    /// Decodes that produced a message (and then round-tripped).
    pub accepted: u64,
    /// Decodes that produced a typed `WireError`.
    pub rejected: u64,
}

/// Every request variant worth encoding (exercises each body shape).
fn request_seeds() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Create { name: "net".into(), payload: "nodes 2\nedge 0 1\n".into() },
        Request::Export { name: "net".into() },
        Request::Construct { name: "net".into() },
        Request::Route { name: "net".into(), from: 3, to: 99 },
        Request::Broadcast { name: "net".into(), source: 0 },
        Request::Stats { name: "net".into() },
        Request::Mutate { name: "n".into(), mutation: Mutation::Join { x: 1.5, y: -2.25 } },
        Request::Mutate { name: "n".into(), mutation: Mutation::Leave { node: 7 } },
        Request::Mutate {
            name: "n".into(),
            mutation: Mutation::Move { node: 4, x: 0.0, y: 9.75 },
        },
        Request::Harden { name: "net".into(), k: 2, m: 2 },
        Request::MutateBatch {
            name: "n".into(),
            mutations: vec![
                Mutation::Move { node: 4, x: 0.5, y: 9.75 },
                Mutation::Join { x: -1.0, y: 2.0 },
                Mutation::Leave { node: 2 },
            ],
        },
        Request::MutateBatch { name: "n".into(), mutations: vec![] },
        Request::List,
        Request::Drop { name: "n".into() },
        Request::Shutdown,
    ]
}

/// Every response variant worth encoding.
fn response_seeds() -> Vec<Response> {
    vec![
        Response::Pong,
        Response::Created { nodes: 10, edges: 20, mobile: true },
        Response::Exported { payload: "nodes 1\n".into() },
        Response::Constructed { mis: 4, bridges: 2, spanner_edges: 31, epoch: 5 },
        Response::Routed { path: vec![0, 4, 2, 9] },
        Response::Routed { path: vec![] },
        Response::Broadcasted { forwarders: 6, informed: 50 },
        Response::StatsOk(TopologyStats {
            nodes: 100,
            edges: 400,
            epoch: 3,
            mobile: true,
            cached: false,
            mis: 12,
            bridges: 5,
            spanner_edges: 210,
            cache_hits: 40,
            cache_misses: 4,
            rebuilds: 4,
            hardened_k: 2,
            hardened_m: 2,
            achieved_k: 2,
            routes_ok: 31,
            routes_degraded: 3,
            routes_unreachable: 1,
            heals: 1,
            lease_waits: 6,
            lease_conflicts: 9,
            batched_mutations: 320,
            concurrent_repairs_max: 4,
            snapshot_reads: 77,
            pipeline_depth_max: 32,
            syscalls: 5120,
        }),
        Response::Mutated { epoch: 9, promoted: vec![3], demoted: vec![1, 2] },
        Response::BatchMutated {
            epoch: 320,
            applied: 16,
            promoted: 2,
            demoted: 1,
            lease_wait_us: 350,
        },
        Response::Topologies { names: vec!["a".into(), "b".into()] },
        Response::Hardened {
            k: 2,
            m: 2,
            achieved_k: 2,
            dominators: 40,
            spanner_edges: 310,
            epoch: 6,
        },
        Response::Degraded { unreachable: 17 },
        Response::Dropped,
        Response::ShuttingDown,
        Response::Error {
            code: wcds_service::protocol::ErrorCode::Unroutable,
            message: "no route".into(),
        },
    ]
}

/// All candidate frame bodies derived from the seeds plus the
/// exhaustive small-frame sweep.
fn candidates() -> Vec<Vec<u8>> {
    let mut seeds: Vec<Vec<u8>> = Vec::new();
    seeds.extend(request_seeds().iter().map(Request::encode));
    seeds.extend(response_seeds().iter().map(Response::encode));

    let mut out: Vec<Vec<u8>> = Vec::new();
    for seed in &seeds {
        // every truncation
        for cut in 0..seed.len() {
            out.push(seed[..cut].to_vec());
        }
        // every single-byte boundary overwrite
        for pos in 0..seed.len() {
            let original = seed[pos];
            for value in [0x00, 0x01, 0x7f, 0xff, original ^ 0x20] {
                if value != original {
                    let mut m = seed.clone();
                    m[pos] = value;
                    out.push(m);
                }
            }
        }
        // hostile 8-byte lengths spliced where length prefixes live
        for splice_at in 2..seed.len().min(12) {
            for hostile in [u64::MAX, 1u64 << 40] {
                let mut m = seed[..splice_at].to_vec();
                m.extend_from_slice(&hostile.to_le_bytes());
                m.extend_from_slice(seed.get(splice_at..).unwrap_or(&[]));
                out.push(m);
            }
        }
    }
    // full tag sweep on a well-formed header
    for tag in 0..=255u8 {
        out.push(vec![PROTOCOL_VERSION, tag]);
    }
    // exhaustive frames of length ≤ 2
    out.push(Vec::new());
    for a in 0..=255u8 {
        out.push(vec![a]);
        for b in 0..=255u8 {
            out.push(vec![a, b]);
        }
    }
    // length 3 over a protocol-relevant alphabet
    let alphabet = [0x00, 0x01, PROTOCOL_VERSION, 0x04, 0x08, 0x0a, 0x0b, 0x7f, 0xff];
    for a in alphabet {
        for b in alphabet {
            for c in alphabet {
                out.push(vec![a, b, c]);
            }
        }
    }
    out.extend(seeds);
    out
}

/// Verifies the seed corpus covers the **full** tag range of both
/// message enums, by probing rather than by a hand-kept list.
///
/// Each decoder is fed a bare `[version, tag]` header for all 256
/// tags. A decoder that answers anything but its own `UnknownTag`
/// recognises the tag — so some canonical seed must encode exactly
/// that tag, or a future variant was added without extending the
/// corpus (and the truncation/mutation/splice sweeps silently lost
/// coverage of its body shape).
///
/// # Errors
///
/// A recognised tag no seed encodes, or a seed tag the decoder
/// rejects; returns the `(request, response)` tag counts on success.
pub fn verify_seed_tag_coverage() -> Result<(usize, usize), String> {
    let req_seed_tags: BTreeSet<u8> =
        request_seeds().iter().filter_map(|r| r.encode().get(1).copied()).collect();
    let resp_seed_tags: BTreeSet<u8> =
        response_seeds().iter().filter_map(|r| r.encode().get(1).copied()).collect();
    let (mut req_known, mut resp_known) = (0usize, 0usize);
    for tag in 0..=255u8 {
        let probe = [PROTOCOL_VERSION, tag];
        let req_exists = !matches!(
            Request::decode(&probe),
            Err(WireError::UnknownTag { what: "request", .. })
        );
        let resp_exists = !matches!(
            Response::decode(&probe),
            Err(WireError::UnknownTag { what: "response", .. })
        );
        for (exists, seeded, what) in [
            (req_exists, req_seed_tags.contains(&tag), "request"),
            (resp_exists, resp_seed_tags.contains(&tag), "response"),
        ] {
            if exists && !seeded {
                return Err(format!(
                    "{what} tag {tag} is recognised by the decoder but no canonical \
                     seed encodes it — extend the seed corpus"
                ));
            }
            if !exists && seeded {
                return Err(format!(
                    "a seed encodes {what} tag {tag}, which the decoder rejects"
                ));
            }
        }
        req_known += usize::from(req_exists);
        resp_known += usize::from(resp_exists);
    }
    Ok((req_known, resp_known))
}

/// Pushes every candidate through both decoders.
///
/// # Errors
///
/// A panic inside a decoder, or an accepted frame that fails to
/// round-trip, rendered with the offending bytes.
pub fn run() -> Result<TotalityReport, String> {
    // the harness *expects* panics to be impossible; silence the
    // default hook so a failure doesn't spray backtraces before the
    // typed report
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = run_inner();
    std::panic::set_hook(prior);
    outcome
}

fn run_inner() -> Result<TotalityReport, String> {
    let mut report = TotalityReport::default();
    for body in candidates() {
        report.frames_tried += 1;
        check_request(&body, &mut report)?;
        check_response(&body, &mut report)?;
    }
    Ok(report)
}

fn check_request(body: &[u8], report: &mut TotalityReport) -> Result<(), String> {
    let decoded = catch_unwind(AssertUnwindSafe(|| Request::decode(body)))
        .map_err(|_| format!("Request::decode PANICKED on {} bytes: {body:02x?}", body.len()))?;
    match decoded {
        Ok(req) => {
            report.accepted += 1;
            let re = Request::decode(&req.encode()).map_err(|e| {
                format!("accepted request failed to re-decode ({e}): {body:02x?}")
            })?;
            if re != req && re.encode() != req.encode() {
                return Err(format!("request round-trip mismatch on {body:02x?}"));
            }
        }
        Err(_) => report.rejected += 1,
    }
    Ok(())
}

fn check_response(body: &[u8], report: &mut TotalityReport) -> Result<(), String> {
    let decoded = catch_unwind(AssertUnwindSafe(|| Response::decode(body)))
        .map_err(|_| format!("Response::decode PANICKED on {} bytes: {body:02x?}", body.len()))?;
    match decoded {
        Ok(resp) => {
            report.accepted += 1;
            let re = Response::decode(&resp.encode()).map_err(|e| {
                format!("accepted response failed to re-decode ({e}): {body:02x?}")
            })?;
            if !responses_equal(&re, &resp) {
                return Err(format!("response round-trip mismatch on {body:02x?}"));
            }
        }
        Err(_) => report.rejected += 1,
    }
    Ok(())
}

/// Value equality with an encoding fallback: a mutated frame may
/// decode to a NaN coordinate, where `PartialEq` is false but the bit
/// pattern re-encodes exactly — still a faithful round trip.
fn responses_equal(a: &Response, b: &Response) -> bool {
    a == b || a.encode() == b.encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totality_holds_over_the_full_candidate_set() {
        let report = match run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        // 1 + 256 + 65536 exhaustive small frames alone
        assert!(report.frames_tried > 65_000, "only {} frames", report.frames_tried);
        // the canonical seeds at least must decode
        assert!(report.accepted >= 26, "only {} accepted", report.accepted);
        assert!(report.rejected > report.accepted);
    }

    #[test]
    fn seeds_cover_every_recognised_tag() {
        let (req, resp) = match verify_seed_tag_coverage() {
            Ok(counts) => counts,
            Err(e) => panic!("{e}"),
        };
        // the protocol today: request tags 0..=12, response tags
        // 0..=14 — a new variant bumps these pins together with its
        // canonical seed
        assert_eq!(req, 13, "request tag count changed");
        assert_eq!(resp, 15, "response tag count changed");
    }

    #[test]
    fn candidate_set_contains_the_seeds_unmutated() {
        let set = candidates();
        for req in request_seeds() {
            assert!(set.contains(&req.encode()));
        }
        for resp in response_seeds() {
            assert!(set.contains(&resp.encode()));
        }
    }
}
