//! Workspace call graph and the interprocedural analysis driver.
//!
//! [`scan`] parses every `crates/*/src` tree (plus the root crate's
//! `src/`) with [`crate::items`] and links call sites to workspace
//! functions. Resolution is deliberately an **over-approximation** —
//! reachability soundness beats precision for a gate:
//!
//! * `Qual::name(…)` links to workspace functions named `name` whose
//!   crate, module, file stem, or `impl` type matches `Qual`; a
//!   qualifier the workspace has never defined (`std` types, external
//!   traits) links to nothing. `Self::name(…)` resolves against the
//!   caller's `impl` type.
//! * `.name(…)` method calls link to every `impl`-block function named
//!   `name` — receiver types are unknown, so all method candidates are
//!   assumed callable (free functions are not: method syntax cannot
//!   reach them).
//! * Free `name(…)` calls prefer same-file, then same-crate, then
//!   workspace-wide matches.
//! * Every resolution is filtered by the caller crate's transitive
//!   `[dependencies]` closure (parsed from the `Cargo.toml`s) — a
//!   service function can't "call into" the benchmark harness just
//!   because a method name collides. Crates without a manifest
//!   (fixture trees) may call anything.
//!
//! [`analyze`] runs the three analyses ([`crate::reach`] panic
//! reachability, [`crate::lockorder`] lock-order cycles and
//! hold-across-blocking-IO), applies justified pragmas, and renders
//! the machine-readable findings artifact. [`compare_baseline`] diffs
//! a report against the checked-in burn-down baseline, keyed by
//! `(analysis, kind, file, function)` with counts — line-free keys so
//! unrelated edits don't churn the baseline.

use crate::items::{self, FnItem};
use crate::json::Json;
use crate::lexer::{lex, Pragma};
use crate::lints::{self, Suppression};
use crate::{lockorder, reach};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Function index into [`Workspace::fns`].
pub type FnId = usize;

/// The parsed workspace.
pub struct Workspace {
    /// Every parsed function.
    pub fns: Vec<FnItem>,
    /// Pragmas per file (path relative to the scan root).
    pub pragmas: BTreeMap<String, Vec<Pragma>>,
    /// Files scanned.
    pub files: usize,
    by_name: HashMap<String, Vec<FnId>>,
    /// Every name a qualifier can legally target.
    containers: HashSet<String>,
    /// Per crate: the workspace crates it may call (its transitive
    /// `[dependencies]` closure, self included). A crate with no
    /// parsed manifest (fixture trees) has no entry and may call
    /// anything — over-approximation stays sound.
    deps: HashMap<String, HashSet<String>>,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct CgEdge {
    /// Caller's call-site index (into `fns[caller].calls`).
    pub call: usize,
    /// Resolved callee.
    pub callee: FnId,
}

/// The resolved call graph: `edges[f]` are `f`'s outgoing edges.
pub struct CallGraph {
    pub edges: Vec<Vec<CgEdge>>,
    /// Total resolved edges.
    pub edge_count: usize,
}

/// Scans `root` (`crates/*/src` and, if present, the root `src/`).
///
/// # Errors
///
/// Propagates directory-walk failures; unreadable single files are
/// skipped (generated or non-UTF-8 sources are not load-bearing).
pub fn scan(root: &Path) -> io::Result<Workspace> {
    let mut sources: Vec<(String, String)> = Vec::new(); // (rel, crate)
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.path().join("src").is_dir() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        for name in names {
            let mut files = Vec::new();
            lints::collect_rs(&crates_dir.join(&name).join("src"), &mut files)?;
            files.sort();
            for path in files {
                if let Ok(rel) = path.strip_prefix(root) {
                    sources.push((rel.to_string_lossy().into_owned(), name.clone()));
                }
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        let mut files = Vec::new();
        lints::collect_rs(&root_src, &mut files)?;
        files.sort();
        for path in files {
            if let Ok(rel) = path.strip_prefix(root) {
                sources.push((rel.to_string_lossy().into_owned(), "wcds".to_string()));
            }
        }
    }

    let mut crate_names: Vec<String> =
        sources.iter().map(|(_, c)| c.clone()).collect::<HashSet<_>>().into_iter().collect();
    crate_names.sort();
    let mut ws = Workspace {
        fns: Vec::new(),
        pragmas: BTreeMap::new(),
        files: 0,
        by_name: HashMap::new(),
        containers: HashSet::new(),
        deps: crate_deps(root, &crate_names),
    };
    for (rel, crate_name) in sources {
        let Ok(src) = fs::read_to_string(root.join(&rel)) else { continue };
        ws.files += 1;
        let lexed = lex(&src);
        let fns = items::parse_file(&lexed.masked, &rel, &crate_name);
        if !lexed.pragmas.is_empty() {
            ws.pragmas.insert(rel.clone(), lexed.pragmas);
        }
        ws.fns.extend(fns);
    }
    for (id, f) in ws.fns.iter().enumerate() {
        ws.by_name.entry(f.name.clone()).or_default().push(id);
        ws.containers.extend(f.containers());
    }
    Ok(ws)
}

/// Reads each crate's `Cargo.toml` `[dependencies]` section, keeps the
/// keys that name scanned workspace crates, and closes transitively.
/// The root crate (`wcds`) reads the root manifest. Crates whose
/// manifest is missing or unreadable get no entry.
fn crate_deps(root: &Path, names: &[String]) -> HashMap<String, HashSet<String>> {
    let name_set: HashSet<&str> = names.iter().map(String::as_str).collect();
    let mut direct: HashMap<String, HashSet<String>> = HashMap::new();
    for name in names {
        let manifest = if name == "wcds" {
            root.join("Cargo.toml")
        } else {
            root.join("crates").join(name).join("Cargo.toml")
        };
        let Ok(text) = fs::read_to_string(&manifest) else { continue };
        let mut in_deps = false;
        let mut found: HashSet<String> = HashSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            let key = line.split(['=', '.', ' ']).next().unwrap_or("").trim();
            if name_set.contains(key) {
                found.insert(key.to_string());
            }
        }
        found.insert(name.clone());
        direct.insert(name.clone(), found);
    }
    // transitive closure (the dep graph is a handful of crates)
    loop {
        let mut changed = false;
        for name in names {
            let Some(cur) = direct.get(name).cloned() else { continue };
            let mut grown = cur.clone();
            for dep in &cur {
                if let Some(dd) = direct.get(dep) {
                    grown.extend(dd.iter().cloned());
                }
            }
            if grown.len() != cur.len() {
                direct.insert(name.clone(), grown);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    direct
}

impl Workspace {
    /// True when `caller`'s crate may depend on `callee`'s crate.
    fn dep_allowed(&self, caller: FnId, callee: FnId) -> bool {
        let a = &self.fns[caller].crate_name;
        let b = &self.fns[callee].crate_name;
        a == b || self.deps.get(a).is_none_or(|d| d.contains(b))
    }

    /// Resolves one call site of `caller` to candidate callees.
    pub fn resolve(&self, caller: FnId, call: &items::CallSite) -> Vec<FnId> {
        if call.name == "drop" {
            return Vec::new();
        }
        let Some(candidates) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        match &call.qual {
            Some(q) if q == "Self" => {
                let Some(own) = self.fns[caller].qual.clone() else { return Vec::new() };
                candidates
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].qual.as_deref() == Some(own.as_str()))
                    .collect()
            }
            Some(q) => {
                if !self.containers.contains(q) {
                    return Vec::new(); // std / external — out of scope
                }
                candidates
                    .iter()
                    .copied()
                    .filter(|&id| {
                        self.fns[id].containers().contains(q) && self.dep_allowed(caller, id)
                    })
                    .collect()
            }
            // method syntax reaches only `impl`-block functions in a
            // crate the caller can see — free functions are never
            // callable as `.name(…)`, and a crate outside the caller's
            // dependency closure is not linkable
            None if call.method => candidates
                .iter()
                .copied()
                .filter(|&id| self.fns[id].qual.is_some() && self.dep_allowed(caller, id))
                .collect(),
            None => {
                let same_file: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].file == self.fns[caller].file)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let same_crate: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].crate_name == self.fns[caller].crate_name)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                candidates.iter().copied().filter(|&id| self.dep_allowed(caller, id)).collect()
            }
        }
    }

    /// Resolves every call site into a [`CallGraph`].
    pub fn call_graph(&self) -> CallGraph {
        let mut edges = vec![Vec::new(); self.fns.len()];
        let mut edge_count = 0usize;
        for (id, f) in self.fns.iter().enumerate() {
            let mut seen: HashSet<FnId> = HashSet::new();
            for (ci, call) in f.calls.iter().enumerate() {
                for callee in self.resolve(id, call) {
                    // keep one edge per (caller, callee) — the first
                    // call site is the witness — except calls that
                    // hold locks, which each matter for lock analyses
                    if call.held.is_empty() && !seen.insert(callee) {
                        continue;
                    }
                    edges[id].push(CgEdge { call: ci, callee });
                    edge_count += 1;
                }
            }
        }
        CallGraph { edges, edge_count }
    }

    /// `file:line` for a function's body-open line.
    pub fn site(&self, id: FnId) -> String {
        format!("{}:{}", self.fns[id].file, self.fns[id].line)
    }
}

/// One interprocedural finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisFinding {
    /// `panic-reachability`, `lock-order`, or `hold-across-io`.
    pub analysis: &'static str,
    /// Finding kind within the analysis (`panic-site`, `slice-index`,
    /// `lock-cycle`, `held-across-blocking`).
    pub kind: &'static str,
    /// Path relative to the scan root.
    pub file: String,
    /// 1-based line of the witness site.
    pub line: usize,
    /// Enclosing function (display form).
    pub function: String,
    /// What was found.
    pub message: String,
    /// Witness path: entry → … → site, one `file:line fn` per step.
    pub witness: Vec<String>,
}

/// The pragma lint name that suppresses a finding of this kind.
pub fn pragma_lint(f: &AnalysisFinding) -> &'static str {
    match f.analysis {
        "panic-reachability" => f.kind, // panic-site / slice-index
        "lock-order" => "lock-order",
        _ => "hold-across-io",
    }
}

/// Outcome of the full interprocedural pass.
pub struct AnalysisReport {
    /// Findings that survived pragma suppression, sorted by
    /// (analysis, file, line).
    pub findings: Vec<AnalysisFinding>,
    /// Pragma-suppressed findings (audited, never silent).
    pub suppressed: Vec<Suppression>,
    /// Functions parsed.
    pub fns: usize,
    /// Files scanned.
    pub files: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Entry-point functions matched by [`reach::ENTRY_POINTS`].
    pub entries: usize,
    /// Functions reachable from the entry points.
    pub reachable: usize,
    /// Wall-clock for the whole pass.
    pub elapsed_ms: u128,
}

impl AnalysisReport {
    /// True when no finding survived suppression.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs the full interprocedural pass over the tree at `root`.
///
/// # Errors
///
/// Propagates scan I/O failures.
pub fn analyze(root: &Path) -> io::Result<AnalysisReport> {
    let started = Instant::now();
    let ws = scan(root)?;
    let graph = ws.call_graph();
    let (entries, reachable_count, mut raw) = reach::run(&ws, &graph);
    raw.extend(lockorder::run(&ws, &graph));

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let empty = Vec::new();
    for f in raw {
        let pragmas = ws.pragmas.get(&f.file).unwrap_or(&empty);
        let lint = pragma_lint(&f);
        let hit = pragmas.iter().find(|p| {
            p.lint == lint
                && !p.justification.trim().is_empty()
                && (p.line == f.line || p.line + 1 == f.line)
        });
        match hit {
            Some(p) => suppressed.push(Suppression {
                file: f.file.clone(),
                line: f.line,
                lint: lint.to_string(),
                justification: p.justification.clone(),
            }),
            None => findings.push(f),
        }
    }
    findings.sort_by(|a, b| {
        (a.analysis, &a.file, a.line, a.kind).cmp(&(b.analysis, &b.file, b.line, b.kind))
    });
    suppressed.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    Ok(AnalysisReport {
        findings,
        suppressed,
        fns: ws.fns.len(),
        files: ws.files,
        edges: graph.edge_count,
        entries,
        reachable: reachable_count,
        elapsed_ms: started.elapsed().as_millis(),
    })
}

/// Renders the machine-readable findings artifact.
pub fn report_json(report: &AnalysisReport) -> Json {
    let findings = report
        .findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("analysis".into(), Json::Str(f.analysis.into())),
                ("kind".into(), Json::Str(f.kind.into())),
                ("file".into(), Json::Str(f.file.clone())),
                ("line".into(), Json::Num(f.line as i64)),
                ("function".into(), Json::Str(f.function.clone())),
                ("message".into(), Json::Str(f.message.clone())),
                (
                    "witness".into(),
                    Json::Arr(f.witness.iter().map(|w| Json::Str(w.clone())).collect()),
                ),
            ])
        })
        .collect();
    let suppressed = report
        .suppressed
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("file".into(), Json::Str(s.file.clone())),
                ("line".into(), Json::Num(s.line as i64)),
                ("lint".into(), Json::Str(s.lint.clone())),
                ("justification".into(), Json::Str(s.justification.clone())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::Num(1)),
        (
            "analyses".into(),
            Json::Arr(
                ["panic-reachability", "lock-order", "hold-across-io"]
                    .iter()
                    .map(|a| Json::Str((*a).into()))
                    .collect(),
            ),
        ),
        (
            "stats".into(),
            Json::Obj(vec![
                ("files".into(), Json::Num(report.files as i64)),
                ("functions".into(), Json::Num(report.fns as i64)),
                ("call_edges".into(), Json::Num(report.edges as i64)),
                ("entry_points".into(), Json::Num(report.entries as i64)),
                ("reachable_functions".into(), Json::Num(report.reachable as i64)),
                ("elapsed_ms".into(), Json::Num(report.elapsed_ms as i64)),
            ]),
        ),
        ("findings".into(), Json::Arr(findings)),
        ("suppressed".into(), Json::Arr(suppressed)),
    ])
}

/// Baseline key: one burn-down bucket.
pub type BaselineKey = (String, String, String, String); // analysis, kind, file, function

/// Groups findings into baseline buckets with counts.
pub fn bucket(findings: &[AnalysisFinding]) -> BTreeMap<BaselineKey, usize> {
    let mut out: BTreeMap<BaselineKey, usize> = BTreeMap::new();
    for f in findings {
        *out.entry((
            f.analysis.to_string(),
            f.kind.to_string(),
            f.file.clone(),
            f.function.clone(),
        ))
        .or_default() += 1;
    }
    out
}

/// Renders a report's buckets as the checked-in baseline document.
pub fn baseline_json(report: &AnalysisReport) -> Json {
    let entries = bucket(&report.findings)
        .into_iter()
        .map(|((analysis, kind, file, function), count)| {
            Json::Obj(vec![
                ("analysis".into(), Json::Str(analysis)),
                ("kind".into(), Json::Str(kind)),
                ("file".into(), Json::Str(file)),
                ("function".into(), Json::Str(function)),
                ("count".into(), Json::Num(count as i64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::Num(1)),
        ("entries".into(), Json::Arr(entries)),
    ])
}

/// Parses a baseline document into buckets.
///
/// # Errors
///
/// Malformed JSON or a missing field.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<BaselineKey, usize>, String> {
    let doc = crate::json::parse(text)?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing `entries` array")?;
    let mut out = BTreeMap::new();
    for e in entries {
        let field = |k: &str| {
            e.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline entry: missing `{k}`"))
        };
        let key = (field("analysis")?, field("kind")?, field("file")?, field("function")?);
        let count = e
            .get("count")
            .and_then(Json::as_i64)
            .ok_or("baseline entry: missing `count`")?;
        *out.entry(key).or_insert(0) += count.max(0) as usize;
    }
    Ok(out)
}

/// Baseline comparison outcome.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Buckets with more findings than the baseline admits
    /// (key, current, baselined) — these fail the gate.
    pub regressions: Vec<(BaselineKey, usize, usize)>,
    /// Baseline buckets with fewer findings than recorded — the debt
    /// shrank and the baseline must be re-generated (kept honest by
    /// the gate test).
    pub stale: Vec<(BaselineKey, usize, usize)>,
}

impl BaselineDiff {
    /// True when the report exactly matches the baseline.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty()
    }
}

/// Diffs a report against baseline buckets.
pub fn compare_baseline(
    report: &AnalysisReport,
    baseline: &BTreeMap<BaselineKey, usize>,
) -> BaselineDiff {
    let current = bucket(&report.findings);
    let mut diff = BaselineDiff::default();
    for (key, &cur) in &current {
        let base = baseline.get(key).copied().unwrap_or(0);
        if cur > base {
            diff.regressions.push((key.clone(), cur, base));
        }
    }
    for (key, &base) in baseline {
        let cur = current.get(key).copied().unwrap_or(0);
        if cur < base {
            diff.stale.push((key.clone(), cur, base));
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_from(files: &[(&str, &str, &str)]) -> Workspace {
        // (rel, crate, src)
        let mut ws = Workspace {
            fns: Vec::new(),
            pragmas: BTreeMap::new(),
            files: files.len(),
            by_name: HashMap::new(),
            containers: HashSet::new(),
            deps: HashMap::new(),
        };
        for (rel, krate, src) in files {
            let lexed = lex(src);
            ws.fns.extend(items::parse_file(&lexed.masked, rel, krate));
        }
        for (id, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(id);
            ws.containers.extend(f.containers());
        }
        ws
    }

    #[test]
    fn qualified_calls_resolve_within_the_named_container() {
        let ws = ws_from(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "pub fn go() { util::helper(); TcpStream::connect(addr); }\n",
            ),
            ("crates/util/src/lib.rs", "util", "pub fn helper() {}\n"),
            ("crates/b/src/lib.rs", "b", "pub fn helper() {}\n"),
        ]);
        let graph = ws.call_graph();
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        let callees: Vec<&str> =
            graph.edges[go].iter().map(|e| ws.fns[e.callee].crate_name.as_str()).collect();
        // util::helper links only into the util crate; TcpStream is
        // unknown to the workspace and links nowhere
        assert_eq!(callees, vec!["util"]);
    }

    #[test]
    fn method_calls_link_to_every_candidate() {
        let ws = ws_from(&[
            ("crates/a/src/lib.rs", "a", "pub fn go(x: &X) { x.apply(); }\n"),
            ("crates/b/src/lib.rs", "b", "impl Y { pub fn apply(&self) {} }\n"),
            ("crates/c/src/lib.rs", "c", "impl Z { pub fn apply(&self) {} }\n"),
        ]);
        let graph = ws.call_graph();
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(graph.edges[go].len(), 2);
    }

    #[test]
    fn method_syntax_never_reaches_free_functions() {
        let ws = ws_from(&[
            ("crates/a/src/lib.rs", "a", "pub fn go(x: &X) { x.run(); }\n"),
            ("crates/b/src/lib.rs", "b", "pub fn run() {}\n"),
            ("crates/c/src/lib.rs", "c", "impl Z { pub fn run(&self) {} }\n"),
        ]);
        let graph = ws.call_graph();
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(graph.edges[go].len(), 1);
        assert_eq!(ws.fns[graph.edges[go][0].callee].crate_name, "c");
    }

    #[test]
    fn resolution_respects_the_crate_dependency_closure() {
        let mut ws = ws_from(&[
            ("crates/a/src/lib.rs", "a", "pub fn go(x: &X) { x.apply(); }\n"),
            ("crates/b/src/lib.rs", "b", "impl Y { pub fn apply(&self) {} }\n"),
            ("crates/c/src/lib.rs", "c", "impl Z { pub fn apply(&self) {} }\n"),
        ]);
        // a depends only on b — the name collision in c is unlinkable
        ws.deps.insert("a".into(), ["a".to_string(), "b".to_string()].into_iter().collect());
        let graph = ws.call_graph();
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(graph.edges[go].len(), 1);
        assert_eq!(ws.fns[graph.edges[go][0].callee].crate_name, "b");
    }

    #[test]
    fn free_calls_prefer_the_same_file() {
        let ws = ws_from(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "pub fn go() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/b/src/lib.rs", "b", "pub fn helper() {}\n"),
        ]);
        let graph = ws.call_graph();
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(graph.edges[go].len(), 1);
        assert_eq!(ws.fns[graph.edges[go][0].callee].crate_name, "a");
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let ws = ws_from(&[(
            "crates/a/src/lib.rs",
            "a",
            "impl Foo { fn go(&self) { Self::helper(); } fn helper() {} }\nimpl Bar { fn helper() {} }\n",
        )]);
        let graph = ws.call_graph();
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(graph.edges[go].len(), 1);
        assert_eq!(ws.fns[graph.edges[go][0].callee].qual.as_deref(), Some("Foo"));
    }

    #[test]
    fn baseline_round_trip_and_diff() {
        let f = |file: &str, function: &str| AnalysisFinding {
            analysis: "panic-reachability",
            kind: "slice-index",
            file: file.into(),
            line: 3,
            function: function.into(),
            message: String::new(),
            witness: Vec::new(),
        };
        let report = AnalysisReport {
            findings: vec![f("a.rs", "x"), f("a.rs", "x"), f("b.rs", "y")],
            suppressed: Vec::new(),
            fns: 0,
            files: 0,
            edges: 0,
            entries: 0,
            reachable: 0,
            elapsed_ms: 0,
        };
        let baseline = parse_baseline(&baseline_json(&report).render()).unwrap();
        assert!(compare_baseline(&report, &baseline).is_clean());

        // one extra finding in a known bucket → regression
        let mut more = report.findings.clone();
        more.push(f("b.rs", "y"));
        let worse = AnalysisReport { findings: more, ..report };
        let diff = compare_baseline(&worse, &baseline);
        assert_eq!(diff.regressions.len(), 1);
        assert!(diff.stale.is_empty());

        // a fixed bucket → stale baseline entry
        let better = AnalysisReport {
            findings: vec![worse.findings[0].clone(), worse.findings[1].clone()],
            ..worse
        };
        let diff = compare_baseline(&better, &baseline);
        assert!(diff.regressions.is_empty());
        assert_eq!(diff.stale.len(), 1);
    }
}
