//! Minimal JSON value — serializer and parser.
//!
//! The analyzer emits machine-readable findings
//! (`artifacts/analyze_findings.json`) and reads a checked-in baseline
//! (`crates/wcds-analyze/analyze_baseline.json`). The workspace is
//! dependency-free by policy, so this is a small hand-rolled JSON
//! implementation covering exactly what those two files need: objects,
//! arrays, strings, integers, booleans, and null. Floats, scientific
//! notation, and `\u` escapes beyond the BMP round-trip losslessly
//! enough for our use (we never emit them).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers we emit are non-negative integers (lines, counts).
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered; keys stay in the order they were added so
    /// the artifact diffs stably.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline —
    /// the artifact is meant to be read by humans in CI logs too.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { src: src.as_bytes(), at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.src.len() {
        return Err(format!("trailing data at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.src.len() && self.src[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.src[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.at])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<i64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // advance one full UTF-8 character
                    let rest = std::str::from_utf8(&self.src[self.at..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("version".into(), Json::Num(1)),
            (
                "entries".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("file".into(), Json::Str("a \"b\"\nc".into())),
                        ("count".into(), Json::Num(42)),
                        ("ok".into(), Json::Bool(true)),
                        ("none".into(), Json::Null),
                    ]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "tru", "1 2"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse("{\"k\": \"héllo \\u0041\\t\"}").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some("héllo A\t"));
    }
}
