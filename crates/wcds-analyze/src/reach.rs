//! Panic-reachability from the wire entry points.
//!
//! Replaces the strict-file allowlist with true reachability: BFS over
//! the workspace call graph from every function an untrusted peer can
//! drive (protocol decode, the server's accept/worker loops, every
//! store method the dispatcher calls, the client's response path), and
//! flag **every** panic site and slice-indexing site in any reached
//! function, whatever crate it lives in. A panic in a `wcds-graph`
//! helper called from the mutation path kills a worker that may hold
//! the topology write lock — the allowlist never saw it; this does.
//!
//! Each finding carries a witness path (entry → … → site) so the fix
//! is a code read, not an archaeology project.

use crate::callgraph::{AnalysisFinding, CallGraph, FnId, Workspace};
use std::collections::VecDeque;

/// Wire entry points as `(file suffix, function name)`. A function
/// matches when its path ends with the suffix and the names agree.
/// The table names real serving-path functions; the fixture trees use
/// the same file/function names so one table drives both.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    // protocol decode / frame IO — first touch of untrusted bytes
    ("protocol.rs", "decode"),
    ("protocol.rs", "read_frame"),
    ("protocol.rs", "write_frame"),
    // server loops and the request dispatcher
    ("server.rs", "acceptor_loop"),
    ("server.rs", "worker_loop"),
    ("server.rs", "serve_connection"),
    ("server.rs", "handle"),
    // the readiness engine: the loop thread and its executor pool
    ("eventloop.rs", "event_loop"),
    ("eventloop.rs", "executor_loop"),
    // every store method the dispatcher reaches — mutation, batch,
    // heal, and the read paths
    ("store.rs", "create"),
    ("store.rs", "export"),
    ("store.rs", "bundle"),
    ("store.rs", "construct"),
    ("store.rs", "mutate"),
    ("store.rs", "mutate_batch"),
    ("store.rs", "stats"),
    ("store.rs", "harden"),
    ("store.rs", "route"),
    ("store.rs", "broadcast"),
    ("store.rs", "heal"),
    ("store.rs", "list"),
    ("store.rs", "drop_topology"),
    // client response path — decodes server-controlled bytes
    ("client.rs", "request"),
];

/// Functions matching [`ENTRY_POINTS`].
pub fn entry_fns(ws: &Workspace) -> Vec<FnId> {
    let mut out = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if ENTRY_POINTS
            .iter()
            .any(|(file, name)| f.name == *name && f.file.ends_with(file))
        {
            out.push(id);
        }
    }
    out
}

/// BFS from `entries`; returns reachability flags and, per reached
/// function, its predecessor `(caller, call line)` for witnesses.
pub fn reachable(
    ws: &Workspace,
    graph: &CallGraph,
    entries: &[FnId],
) -> (Vec<bool>, Vec<Option<(FnId, usize)>>) {
    let mut seen = vec![false; ws.fns.len()];
    let mut pred: Vec<Option<(FnId, usize)>> = vec![None; ws.fns.len()];
    let mut q: VecDeque<FnId> = VecDeque::new();
    for &e in entries {
        if !seen[e] {
            seen[e] = true;
            q.push_back(e);
        }
    }
    while let Some(u) = q.pop_front() {
        for edge in &graph.edges[u] {
            if !seen[edge.callee] {
                seen[edge.callee] = true;
                pred[edge.callee] = Some((u, ws.fns[u].calls[edge.call].line));
                q.push_back(edge.callee);
            }
        }
    }
    (seen, pred)
}

/// The witness path entry → … → `id`, one rendered step per hop.
pub fn witness(ws: &Workspace, pred: &[Option<(FnId, usize)>], id: FnId) -> Vec<String> {
    let mut chain = vec![id];
    let mut cur = id;
    while let Some((p, _)) = pred[cur] {
        chain.push(p);
        cur = p;
        if chain.len() > ws.fns.len() {
            break; // defensive: preds form a tree, but never loop forever
        }
    }
    chain.reverse();
    chain
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let role = if i == 0 { "entry " } else { "" };
            format!("{role}{} {}", ws.site(f), ws.fns[f].display())
        })
        .collect()
}

/// Runs panic-reachability. Returns `(entry count, reachable count,
/// raw findings)` — pragma suppression happens in the driver.
pub fn run(ws: &Workspace, graph: &CallGraph) -> (usize, usize, Vec<AnalysisFinding>) {
    let entries = entry_fns(ws);
    let (seen, pred) = reachable(ws, graph, &entries);
    let mut findings = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !seen[id] {
            continue;
        }
        let path = witness(ws, &pred, id);
        for (sites, kind) in [(&f.panic_sites, "panic-site"), (&f.index_sites, "slice-index")] {
            for site in sites.iter() {
                findings.push(AnalysisFinding {
                    analysis: "panic-reachability",
                    kind,
                    file: f.file.clone(),
                    line: site.line,
                    function: f.display(),
                    message: format!(
                        "{} — reachable from wire entry point",
                        site.message
                    ),
                    witness: path.clone(),
                });
            }
        }
    }
    (entries.len(), seen.iter().filter(|&&s| s).count(), findings)
}
