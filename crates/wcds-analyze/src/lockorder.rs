//! Lock-order and hold-across-blocking-IO analyses.
//!
//! Both analyses consume the same per-function facts ([`crate::items`])
//! and the resolved call graph ([`crate::callgraph`]):
//!
//! * **lock-order** — builds the "acquired-while-held" digraph over
//!   lock classes (shard `RwLock`s, per-entry `topo`/`published`
//!   locks, the `LeaseTable` mutex, `OnceLock` plan inits, …). An edge
//!   `A → B` means some code path acquires `B` while holding `A`,
//!   directly or through calls. A cycle (including a self-loop: two
//!   instances of the same class, e.g. two shards) is a potential
//!   deadlock; each strongly-connected component yields one finding
//!   with a witness cycle.
//! * **hold-across-io** — flags any lock guard live across a blocking
//!   call (socket read/write/accept/connect, channel `recv`, condvar
//!   `wait` with a *different* guard, `thread::sleep`), directly or
//!   through a callee that blocks. This is the shape that lets one
//!   slow peer stall a shard for every other client.
//!
//! Transitive facts are computed by fixpoint over the call graph;
//! every transitive step is recorded so findings carry a concrete
//! call-chain witness.

use crate::callgraph::{AnalysisFinding, CallGraph, FnId, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// How a function comes to acquire a lock class.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Acquired directly at this line.
    Direct(usize),
    /// Acquired by calling `FnId` at this line.
    Via(FnId, usize),
}

/// Per-function transitive lock classes, with one witness step each.
fn may_acquire(ws: &Workspace, graph: &CallGraph) -> Vec<BTreeMap<String, Step>> {
    let mut acq: Vec<BTreeMap<String, Step>> = vec![BTreeMap::new(); ws.fns.len()];
    for (id, f) in ws.fns.iter().enumerate() {
        for a in &f.acquires {
            acq[id].entry(a.class.clone()).or_insert(Step::Direct(a.line));
        }
    }
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            for e in &graph.edges[id] {
                let line = ws.fns[id].calls[e.call].line;
                let classes: Vec<String> = acq[e.callee].keys().cloned().collect();
                for c in classes {
                    if !acq[id].contains_key(&c) {
                        acq[id].insert(c, Step::Via(e.callee, line));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    acq
}

/// Per-function transitive "does it block", with one witness step.
fn may_block(ws: &Workspace, graph: &CallGraph) -> Vec<Option<(Step, &'static str)>> {
    let mut blk: Vec<Option<(Step, &'static str)>> = vec![None; ws.fns.len()];
    for (id, f) in ws.fns.iter().enumerate() {
        if let Some(b) = f.blocking.first() {
            blk[id] = Some((Step::Direct(b.line), b.what));
        }
    }
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            if blk[id].is_some() {
                continue;
            }
            for e in &graph.edges[id] {
                if let Some((_, what)) = blk[e.callee] {
                    blk[id] =
                        Some((Step::Via(e.callee, ws.fns[id].calls[e.call].line), what));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    blk
}

/// Renders the chain from `id` down to the underlying fact by
/// following witness steps.
fn chain<F>(ws: &Workspace, id: FnId, first: Step, step_of: F) -> Vec<String>
where
    F: Fn(FnId) -> Option<Step>,
{
    let mut out = vec![format!("{} {}", ws.site(id), ws.fns[id].display())];
    let mut cur = first;
    for _ in 0..ws.fns.len() {
        match cur {
            Step::Direct(line) => {
                let file = out
                    .last()
                    .and_then(|s| s.split(':').next())
                    .unwrap_or_default()
                    .to_string();
                out.push(format!("{file}:{line}"));
                return out;
            }
            Step::Via(callee, line) => {
                out.push(format!(
                    "{} {} (called at line {line})",
                    ws.site(callee),
                    ws.fns[callee].display()
                ));
                match step_of(callee) {
                    Some(s) => cur = s,
                    None => return out,
                }
            }
        }
    }
    out
}

/// One acquired-while-held edge with its witness.
#[derive(Debug, Clone)]
struct OrderEdge {
    from: String,
    to: String,
    file: String,
    line: usize,
    function: String,
    /// Rendered chain from the holding function to the acquisition.
    via: Vec<String>,
}

/// Collects every acquired-while-held edge in the workspace.
fn order_edges(
    ws: &Workspace,
    graph: &CallGraph,
    acq: &[BTreeMap<String, Step>],
) -> Vec<OrderEdge> {
    let mut out = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        for a in &f.acquires {
            for h in &a.held {
                out.push(OrderEdge {
                    from: h.clone(),
                    to: a.class.clone(),
                    file: f.file.clone(),
                    line: a.line,
                    function: f.display(),
                    via: Vec::new(),
                });
            }
        }
        for e in &graph.edges[id] {
            let call = &f.calls[e.call];
            if call.held.is_empty() {
                continue;
            }
            for (class, _) in acq[e.callee].iter() {
                for h in &call.held {
                    out.push(OrderEdge {
                        from: h.clone(),
                        to: class.clone(),
                        file: f.file.clone(),
                        line: call.line,
                        function: f.display(),
                        via: chain(ws, e.callee, acq[e.callee][class], |g| {
                            acq[g].get(class).copied()
                        }),
                    });
                }
            }
        }
    }
    out
}

/// Tarjan-free SCC via Kosaraju (the class graph is tiny).
fn sccs(nodes: &BTreeSet<String>, edges: &BTreeSet<(String, String)>) -> Vec<Vec<String>> {
    let idx: BTreeMap<String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
    let n = nodes.len();
    let mut fwd = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    for (a, b) in edges {
        let (Some(&ia), Some(&ib)) = (idx.get(a), idx.get(b)) else { continue };
        fwd[ia].push(ib);
        rev[ib].push(ia);
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // iterative post-order
        let mut stack = vec![(s, 0usize)];
        seen[s] = true;
        while let Some(&(u, next)) = stack.last() {
            if next < fwd[u].len() {
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                let v = fwd[u][next];
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<String>> = Vec::new();
    let names: Vec<&String> = nodes.iter().collect();
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let c = comps.len();
        let mut members = Vec::new();
        let mut stack = vec![s];
        comp[s] = c;
        while let Some(u) = stack.pop() {
            members.push(names[u].clone());
            for &v in &rev[u] {
                if comp[v] == usize::MAX {
                    comp[v] = c;
                    stack.push(v);
                }
            }
        }
        members.sort();
        comps.push(members);
    }
    comps
}

/// Runs both analyses; returns raw findings (pragmas applied by the
/// driver).
pub fn run(ws: &Workspace, graph: &CallGraph) -> Vec<AnalysisFinding> {
    let acq = may_acquire(ws, graph);
    let mut findings = Vec::new();

    // ---- lock-order: cycles in the acquired-while-held digraph
    let edges = order_edges(ws, graph, &acq);
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut edge_set: BTreeSet<(String, String)> = BTreeSet::new();
    let mut witness_of: BTreeMap<(String, String), &OrderEdge> = BTreeMap::new();
    for e in &edges {
        nodes.insert(e.from.clone());
        nodes.insert(e.to.clone());
        edge_set.insert((e.from.clone(), e.to.clone()));
        witness_of.entry((e.from.clone(), e.to.clone())).or_insert(e);
    }
    for comp in sccs(&nodes, &edge_set) {
        let cyclic = comp.len() > 1
            || (comp.len() == 1 && edge_set.contains(&(comp[0].clone(), comp[0].clone())));
        if !cyclic {
            continue;
        }
        // walk one witness cycle through the component, starting at
        // the lexicographically first class
        let mut cycle = vec![comp[0].clone()];
        let mut cur = comp[0].clone();
        loop {
            let next = comp
                .iter()
                .find(|c| {
                    edge_set.contains(&(cur.clone(), (*c).clone()))
                        && (!cycle.contains(c) || **c == comp[0])
                })
                .cloned();
            match next {
                Some(n) => {
                    let done = n == comp[0];
                    cycle.push(n.clone());
                    cur = n;
                    if done {
                        break;
                    }
                }
                None => break,
            }
        }
        let anchor = witness_of[&(cycle[0].clone(), cycle[1].clone())];
        let mut witness: Vec<String> = Vec::new();
        for pair in cycle.windows(2) {
            if let Some(e) = witness_of.get(&(pair[0].clone(), pair[1].clone())) {
                witness.push(format!(
                    "{} → {} at {}:{} in {}",
                    pair[0], pair[1], e.file, e.line, e.function
                ));
                witness.extend(e.via.iter().map(|v| format!("  via {v}")));
            }
        }
        findings.push(AnalysisFinding {
            analysis: "lock-order",
            kind: "lock-cycle",
            file: anchor.file.clone(),
            line: anchor.line,
            function: anchor.function.clone(),
            message: format!(
                "lock classes form an acquisition cycle: {} — potential deadlock",
                cycle.join(" → ")
            ),
            witness,
        });
    }

    // ---- hold-across-io
    let blk = may_block(ws, graph);
    for (id, f) in ws.fns.iter().enumerate() {
        for b in &f.blocking {
            if b.held.is_empty() {
                continue;
            }
            findings.push(AnalysisFinding {
                analysis: "hold-across-io",
                kind: "held-across-blocking",
                file: f.file.clone(),
                line: b.line,
                function: f.display(),
                message: format!(
                    "holds lock{} `{}` across blocking {} — a slow peer stalls every waiter",
                    if b.held.len() > 1 { "s" } else { "" },
                    b.held.join("`, `"),
                    b.what
                ),
                witness: vec![format!("{} {}", ws.site(id), f.display())],
            });
        }
        for e in &graph.edges[id] {
            let call = &f.calls[e.call];
            if call.held.is_empty() {
                continue;
            }
            if let Some((step, what)) = blk[e.callee] {
                let mut witness = vec![format!("{} {}", ws.site(id), f.display())];
                witness.extend(chain(ws, e.callee, step, |g| blk[g].map(|(s, _)| s)));
                findings.push(AnalysisFinding {
                    analysis: "hold-across-io",
                    kind: "held-across-blocking",
                    file: f.file.clone(),
                    line: call.line,
                    function: f.display(),
                    message: format!(
                        "holds lock{} `{}` across a call to `{}`, which blocks on {}",
                        if call.held.len() > 1 { "s" } else { "" },
                        call.held.join("`, `"),
                        ws.fns[e.callee].display(),
                        what
                    ),
                    witness,
                });
            }
        }
    }
    findings
}
