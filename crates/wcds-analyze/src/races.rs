//! Exhaustive interleaving checker for the store's rebuild protocol.
//!
//! The service store answers queries from an epoch-stamped artifact
//! cache: read-lock + stamp check on the hot path, write-lock +
//! double-check + rebuild on a miss, epoch bump under the write lock
//! on mutation (`wcds-service/src/store.rs`). Its hit/miss decisions
//! are factored into `wcds_service::rebuild::{read_check, write_check}`
//! behind the [`EpochView`] shim — so this checker drives the **same
//! decision code the production store runs**, not a re-implementation.
//!
//! [`run`] replays that protocol on a virtual scheduler
//! ([`wcds_sim::interleave`]): every bounded interleaving of query and
//! mutator threads is enumerated, and after every step two safety
//! properties are asserted:
//!
//! 1. **Freshness** — a served bundle's stamp equals the topology
//!    epoch at the moment of serving (no stale bundle for a newer
//!    epoch);
//! 2. **Single rebuild** — at most one rebuild happens per epoch (the
//!    double-check under the write lock holds).
//!
//! Plus the lock discipline itself: never a writer concurrent with a
//! reader. Two deliberately broken protocol variants (double-check
//! skipped; stamp checked outside the lock) are also explored and
//! **must** be caught — proving the checker can see the bugs it
//! guards against.

use std::fmt::Write as _;
use wcds_service::rebuild::{read_check, write_check, EpochView, ReadDecision, WriteDecision};
use wcds_sim::interleave::{explore, Explored, InterleaveError, Interleaved};

/// Shared state of the model: the store's epoch/stamp cell, the
/// RwLock occupancy, and the observation log the invariants read.
#[derive(Debug, Clone)]
pub struct ModelState {
    /// Current mutation epoch.
    pub epoch: u64,
    /// Stamp of the cached bundle, `None` before the first build.
    pub stamp: Option<u64>,
    /// Readers currently inside the topology `RwLock`.
    pub readers: usize,
    /// Whether a writer holds the topology `RwLock`.
    pub writer: bool,
    /// Epoch at which each rebuild happened, in order.
    pub rebuilds: Vec<u64>,
    /// Every serve: `(bundle stamp, epoch at the serve instant)`.
    pub served: Vec<(u64, u64)>,
}

impl ModelState {
    fn cold() -> Self {
        Self { epoch: 0, stamp: None, readers: 0, writer: false, rebuilds: Vec::new(), served: Vec::new() }
    }

    fn warm() -> Self {
        Self { stamp: Some(0), ..Self::cold() }
    }
}

/// The checker sees the model cell exactly as the store sees a locked
/// `Topology`.
impl EpochView for ModelState {
    fn current_epoch(&self) -> u64 {
        self.epoch
    }

    fn bundle_stamp(&self) -> Option<u64> {
        self.stamp
    }
}

/// Protocol variant a query thread runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The store's actual protocol.
    Faithful,
    /// Bug seed: skip `write_check` — always rebuild under the write
    /// lock. Two cold queries then rebuild the same epoch twice.
    NoDoubleCheck,
    /// Bug seed: check the stamp *without* the read lock, serve later
    /// (TOCTOU). A mutator between check and serve makes the serve
    /// stale.
    NoReadLock,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryPhase {
    /// Before `entry.topo.read()`.
    Start,
    /// Holding the read lock; next step checks + serves or bails.
    ReadLocked,
    /// Read lock released on a miss; before `entry.topo.write()`.
    WantWrite,
    /// Holding the write lock; next step double-checks + rebuilds.
    WriteLocked,
    /// Served.
    Done,
    /// (`NoReadLock` only) checked the stamp unlocked, remembering it.
    CheckedUnlocked(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MutatorPhase {
    /// Before `entry.topo.write()`.
    Start,
    /// Holding the write lock; next step bumps the epoch and releases.
    WriteLocked,
    /// Epoch bumped.
    Done,
}

/// One thread of the model.
#[derive(Debug, Clone)]
enum Actor {
    /// `Store::bundle` for one topology.
    Query { phase: QueryPhase, mode: Mode },
    /// `Store::mutate`: write-lock, `epoch += 1`, release.
    Mutator { phase: MutatorPhase },
    /// A lock-free thread of `n` no-op steps (scheduler coverage
    /// probe: with no blocking, every interleaving must be explored).
    Free { left: u8 },
}

fn query(mode: Mode) -> Actor {
    Actor::Query { phase: QueryPhase::Start, mode }
}

fn mutator() -> Actor {
    Actor::Mutator { phase: MutatorPhase::Start }
}

impl Interleaved for Actor {
    type Shared = ModelState;

    fn done(&self) -> bool {
        match self {
            Actor::Query { phase, .. } => *phase == QueryPhase::Done,
            Actor::Mutator { phase } => *phase == MutatorPhase::Done,
            Actor::Free { left } => *left == 0,
        }
    }

    fn enabled(&self, s: &ModelState) -> bool {
        match self {
            // RwLock admission: readers need no writer; writers need
            // the lock empty
            Actor::Query { phase: QueryPhase::Start, mode: Mode::NoReadLock } => true,
            Actor::Query { phase: QueryPhase::Start, .. } => !s.writer,
            Actor::Query { phase: QueryPhase::WantWrite, .. } => !s.writer && s.readers == 0,
            Actor::Mutator { phase: MutatorPhase::Start } => !s.writer && s.readers == 0,
            _ => true,
        }
    }

    fn step(&mut self, s: &mut ModelState) {
        match self {
            Actor::Query { phase, mode } => *phase = query_step(*phase, *mode, s),
            Actor::Mutator { phase } => {
                *phase = match *phase {
                    MutatorPhase::Start => {
                        s.writer = true;
                        MutatorPhase::WriteLocked
                    }
                    MutatorPhase::WriteLocked => {
                        s.epoch += 1;
                        s.writer = false;
                        MutatorPhase::Done
                    }
                    MutatorPhase::Done => MutatorPhase::Done,
                }
            }
            Actor::Free { left } => *left = left.saturating_sub(1),
        }
    }
}

/// One step of `Store::bundle`, mirroring store.rs line for line.
fn query_step(phase: QueryPhase, mode: Mode, s: &mut ModelState) -> QueryPhase {
    match (phase, mode) {
        (QueryPhase::Start, Mode::NoReadLock) => {
            // BUG variant: stamp check with no lock held
            match read_check(s) {
                ReadDecision::Hit => match s.stamp {
                    Some(b) => QueryPhase::CheckedUnlocked(b),
                    None => QueryPhase::WantWrite,
                },
                ReadDecision::Stale => QueryPhase::WantWrite,
            }
        }
        (QueryPhase::CheckedUnlocked(b), _) => {
            // ...and the serve happens a step later: stale if a
            // mutator slipped in between
            s.served.push((b, s.epoch));
            QueryPhase::Done
        }
        (QueryPhase::Start, _) => {
            s.readers += 1;
            QueryPhase::ReadLocked
        }
        (QueryPhase::ReadLocked, _) => {
            // store.rs: read_check under the read lock; serve on hit
            let next = match (read_check(s), s.stamp) {
                (ReadDecision::Hit, Some(b)) => {
                    s.served.push((b, s.epoch));
                    QueryPhase::Done
                }
                _ => QueryPhase::WantWrite,
            };
            s.readers -= 1;
            next
        }
        (QueryPhase::WantWrite, _) => {
            s.writer = true;
            QueryPhase::WriteLocked
        }
        (QueryPhase::WriteLocked, m) => {
            // store.rs: double-check under the write lock, rebuild if
            // still stale
            let fresh_already = m != Mode::NoDoubleCheck
                && write_check(s) == WriteDecision::FreshAlready;
            match (fresh_already, s.stamp) {
                (true, Some(b)) => s.served.push((b, s.epoch)),
                _ => {
                    s.rebuilds.push(s.epoch);
                    s.stamp = Some(s.epoch);
                    s.served.push((s.epoch, s.epoch));
                }
            }
            s.writer = false;
            QueryPhase::Done
        }
        (QueryPhase::Done, _) => QueryPhase::Done,
    }
}

/// The safety properties, checked after every step of every schedule.
fn invariant(s: &ModelState, _actors: &[Actor], _schedule: &[usize]) -> Result<(), String> {
    if s.writer && s.readers > 0 {
        return Err(format!("writer concurrent with {} reader(s)", s.readers));
    }
    if let Some(&(stamp, epoch)) = s.served.iter().find(|&&(b, e)| b != e) {
        return Err(format!("stale serve: bundle stamped {stamp} served at epoch {epoch}"));
    }
    for (i, &e) in s.rebuilds.iter().enumerate() {
        if s.rebuilds[..i].contains(&e) {
            return Err(format!("epoch {e} rebuilt more than once: {:?}", s.rebuilds));
        }
    }
    Ok(())
}

/// Outcome of one explored scenario.
#[derive(Debug)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: &'static str,
    /// Distinct complete schedules explored.
    pub schedules: u64,
    /// Total steps executed across schedules.
    pub steps: u64,
}

/// Outcome of the full race-checker run.
#[derive(Debug, Default)]
pub struct RaceReport {
    /// Per-scenario exploration counts.
    pub scenarios: Vec<Scenario>,
    /// Sum of schedules across scenarios.
    pub total_schedules: u64,
}

/// Runs every scenario. `Err` carries a violation report (schedule +
/// property) — a clean tree returns `Ok`.
///
/// # Errors
///
/// The first scenario whose exploration finds a violated invariant,
/// deadlock, or budget blow-up, rendered with its scheduling prefix —
/// or a broken-variant scenario that the checker *fails* to catch.
pub fn run() -> Result<RaceReport, String> {
    let mut report = RaceReport::default();

    // scheduler coverage probe: two independent 4-step threads have
    // exactly C(8, 4) = 70 interleavings; all must be visited
    let explored = check(
        "coverage: 2 free threads × 4 steps",
        &ModelState::cold(),
        &[Actor::Free { left: 4 }, Actor::Free { left: 4 }],
        &mut report,
    )?;
    if explored.schedules != 70 {
        return Err(format!(
            "coverage probe explored {} schedules, expected C(8,4) = 70 — \
             the scheduler is not exhaustive",
            explored.schedules
        ));
    }

    let faithful: &[(&'static str, ModelState, Vec<Actor>)] = &[
        ("2 queries, cold cache", ModelState::cold(), vec![query(Mode::Faithful); 2]),
        ("2 queries, warm cache", ModelState::warm(), vec![query(Mode::Faithful); 2]),
        ("3 queries, cold cache", ModelState::cold(), vec![query(Mode::Faithful); 3]),
        (
            "query vs mutator, cold",
            ModelState::cold(),
            vec![query(Mode::Faithful), mutator()],
        ),
        (
            "2 queries vs mutator, cold",
            ModelState::cold(),
            vec![query(Mode::Faithful), query(Mode::Faithful), mutator()],
        ),
        (
            "2 queries vs mutator, warm",
            ModelState::warm(),
            vec![query(Mode::Faithful), query(Mode::Faithful), mutator()],
        ),
        (
            "2 queries vs 2 mutators, warm",
            ModelState::warm(),
            vec![query(Mode::Faithful), query(Mode::Faithful), mutator(), mutator()],
        ),
    ];
    for (name, state, actors) in faithful {
        check(name, state, actors, &mut report)?;
    }

    // a warm cache with no mutator must never rebuild
    let mut no_rebuild = |s: &ModelState, a: &[Actor], sched: &[usize]| {
        invariant(s, a, sched)?;
        if s.rebuilds.is_empty() {
            Ok(())
        } else {
            Err("warm cache rebuilt with no mutation".to_string())
        }
    };
    explore(&ModelState::warm(), &[query(Mode::Faithful), query(Mode::Faithful)], &mut no_rebuild)
        .map_err(|e| render("2 queries, warm cache (no-rebuild)", &e))
        .map(|ex| {
            report.total_schedules += ex.schedules;
            report.scenarios.push(Scenario {
                name: "2 queries, warm cache (no-rebuild)",
                schedules: ex.schedules,
                steps: ex.steps,
            });
        })?;

    // sensitivity: the broken variants MUST be caught
    expect_caught(
        "broken: double-check skipped",
        &ModelState::cold(),
        &[query(Mode::NoDoubleCheck), query(Mode::NoDoubleCheck)],
        "rebuilt more than once",
        &mut report,
    )?;
    expect_caught(
        "broken: stamp checked outside the lock",
        &ModelState::warm(),
        &[query(Mode::NoReadLock), mutator()],
        "stale serve",
        &mut report,
    )?;

    Ok(report)
}

fn check(
    name: &'static str,
    state: &ModelState,
    actors: &[Actor],
    report: &mut RaceReport,
) -> Result<Explored, String> {
    let explored =
        explore(state, actors, &mut invariant).map_err(|e| render(name, &e))?;
    report.total_schedules += explored.schedules;
    report.scenarios.push(Scenario {
        name,
        schedules: explored.schedules,
        steps: explored.steps,
    });
    Ok(explored)
}

/// Explores a deliberately broken variant and demands the checker
/// catch it with a message containing `expect_in_message`.
fn expect_caught(
    name: &'static str,
    state: &ModelState,
    actors: &[Actor],
    expect_in_message: &str,
    report: &mut RaceReport,
) -> Result<(), String> {
    match explore(state, actors, &mut invariant) {
        Err(InterleaveError::InvariantViolated { message, .. })
            if message.contains(expect_in_message) =>
        {
            report.scenarios.push(Scenario { name, schedules: 0, steps: 0 });
            Ok(())
        }
        Err(e) => Err(format!(
            "{name}: caught the wrong failure (wanted `{expect_in_message}`): {}",
            render(name, &e)
        )),
        Ok(_) => Err(format!(
            "{name}: checker sensitivity failure — the seeded bug was NOT caught"
        )),
    }
}

fn render(name: &str, e: &InterleaveError) -> String {
    let mut out = format!("scenario `{name}`: ");
    match e {
        InterleaveError::InvariantViolated { schedule, message } => {
            let _ = write!(out, "invariant violated after schedule {schedule:?}: {message}");
        }
        InterleaveError::Deadlock { schedule, blocked } => {
            let _ = write!(out, "deadlock after schedule {schedule:?}; blocked threads {blocked:?}");
        }
        InterleaveError::BudgetExhausted { budget } => {
            let _ = write!(out, "step budget {budget} exhausted");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_pass_and_cover_at_least_70_schedules() {
        let report = match run() {
            Ok(r) => r,
            Err(e) => panic!("race checker found a violation: {e}"),
        };
        assert!(
            report.total_schedules >= 70,
            "only {} schedules explored",
            report.total_schedules
        );
        assert!(report.scenarios.len() >= 10);
    }

    #[test]
    fn warm_single_query_is_one_hit_no_rebuild() {
        let mut state = ModelState::warm();
        let mut q = query(Mode::Faithful);
        while !q.done() {
            assert!(q.enabled(&state));
            q.step(&mut state);
        }
        assert_eq!(state.served, vec![(0, 0)]);
        assert!(state.rebuilds.is_empty());
    }

    #[test]
    fn cold_single_query_rebuilds_once() {
        let mut state = ModelState::cold();
        let mut q = query(Mode::Faithful);
        while !q.done() {
            q.step(&mut state);
        }
        assert_eq!(state.rebuilds, vec![0]);
        assert_eq!(state.stamp, Some(0));
        assert_eq!(state.served, vec![(0, 0)]);
    }

    #[test]
    fn mutation_invalidates_the_stamp() {
        let mut state = ModelState::warm();
        let mut m = mutator();
        while !m.done() {
            m.step(&mut state);
        }
        assert_eq!(state.epoch, 1);
        assert_eq!(state.stamp, Some(0), "mutation leaves the stale bundle in place");
        let mut q = query(Mode::Faithful);
        while !q.done() {
            q.step(&mut state);
        }
        assert_eq!(state.rebuilds, vec![1], "next query rebuilds at the new epoch");
        assert_eq!(state.served, vec![(1, 1)]);
    }
}
