//! In-repo correctness gate for the service layer (DESIGN.md §9).
//!
//! Five engines, one verdict (`cargo run -p wcds-analyze -- check`):
//!
//! * [`lints`] — lexical source lints over the wire-facing modules
//!   (`wcds-service::{protocol, server, store, client}`,
//!   `wcds-graph::io`): no panic sites, no unchecked slice indexing,
//!   no truncating `as` casts, no nested lock acquisition in the
//!   store. Suppression requires a justified
//!   `// analyze: allow(<lint>, "…")` pragma, and every suppression is
//!   reported.
//! * [`callgraph`] — the workspace-wide interprocedural analyzer: a
//!   lightweight item parser ([`items`]) extracts every function's
//!   call sites, lock acquisitions, blocking calls, and panic/index
//!   sites; the resolved call graph then drives three analyses —
//!   [`reach`] (panic-reachability from the wire entry points, in any
//!   crate), and [`lockorder`] (acquired-while-held cycles and lock
//!   guards live across blocking IO). Findings are emitted as JSON
//!   (`artifacts/analyze_findings.json`) and gated against a
//!   checked-in burn-down baseline
//!   (`crates/wcds-analyze/analyze_baseline.json`); the planted-defect
//!   fixture trees under `crates/wcds-analyze/fixtures/` prove the
//!   analyzer catches what it claims.
//! * [`races`] — an exhaustive bounded-interleaving checker
//!   ([`wcds_sim::interleave`]) for the store's epoch-stamped
//!   double-checked-rebuild protocol, driving the *actual* decision
//!   functions via the [`wcds_service::rebuild`] shim. Asserts no
//!   stale bundle is ever served and no epoch is rebuilt twice — and
//!   proves its own sensitivity by catching two seeded protocol bugs.
//! * [`leases`] — the same exploration style for the region-lease
//!   admission protocol behind concurrent mutations, driving the
//!   *actual* [`wcds_core::maintenance::lease::LeaseTable`]: no two
//!   conflicting critical sections overlap, conflicting claims commit
//!   in FIFO (ticket) order, disjoint claims really do run
//!   concurrently, and no schedule deadlocks — again with seeded bugs
//!   that must be caught.
//! * [`totality`] — structure-aware enumeration of truncated, mutated,
//!   and hostile frames through both wire decoders under
//!   `catch_unwind`: no panics, and accepted frames round-trip.
//!
//! The crate is dependency-free (std + workspace crates) and runs as a
//! CI job next to build/test/clippy.

pub mod callgraph;
pub mod items;
pub mod json;
pub mod leases;
pub mod lexer;
pub mod lints;
pub mod lockorder;
pub mod races;
pub mod reach;
pub mod totality;
