//! `wcds-analyze` — the repo's correctness gate.
//!
//! ```text
//! wcds-analyze check            # all four engines (the CI gate)
//! wcds-analyze lints [--root P] # source lints only
//! wcds-analyze races            # store-rebuild interleaving checker
//! wcds-analyze leases           # lease-admission interleaving checker
//! wcds-analyze totality         # decoder totality only
//! ```
//!
//! Exit code 0 = clean, 1 = violations found, 2 = usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wcds_analyze::{leases, lints, races, totality};

fn usage() -> ExitCode {
    eprintln!("usage: wcds-analyze <check|lints|races|leases|totality> [--root <repo-root>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "check" | "lints" | "races" | "leases" | "totality" if command.is_none() => {
                command = Some(arg.clone());
            }
            _ => return usage(),
        }
    }
    let Some(command) = command else { return usage() };

    let mut clean = true;
    if command == "check" || command == "lints" {
        clean &= run_lints(&root);
    }
    if command == "check" || command == "races" {
        clean &= run_races();
    }
    if command == "check" || command == "leases" {
        clean &= run_leases();
    }
    if command == "check" || command == "totality" {
        clean &= run_totality();
    }
    if clean {
        println!("wcds-analyze: clean");
        ExitCode::SUCCESS
    } else {
        println!("wcds-analyze: FAILED");
        ExitCode::FAILURE
    }
}

/// Repo root when run via `cargo run -p wcds-analyze` from anywhere in
/// the workspace.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_lints(root: &Path) -> bool {
    println!("== lints ({} strict files) ==", lints::STRICT_FILES.len());
    let report = match lints::run(root) {
        Ok(r) => r,
        Err(e) => {
            println!("  error reading source tree under {}: {e}", root.display());
            return false;
        }
    };
    for v in &report.violations {
        println!("  {v}");
    }
    for s in &report.suppressed {
        println!(
            "  suppressed {}:{} [{}] — {}",
            s.file, s.line, s.lint, s.justification
        );
    }
    println!(
        "  {} files scanned, {} violation(s), {} suppression(s), \
         {} panic site(s) workspace-wide (informational)",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        report.workspace_panic_sites
    );
    report.is_clean()
}

fn run_races() -> bool {
    println!("== races (store rebuild protocol) ==");
    match races::run() {
        Ok(report) => {
            for s in &report.scenarios {
                if s.schedules > 0 {
                    println!("  {:<42} {:>6} schedules, {:>7} steps", s.name, s.schedules, s.steps);
                } else {
                    println!("  {:<42} seeded bug caught", s.name);
                }
            }
            println!("  {} schedules explored, zero violations", report.total_schedules);
            true
        }
        Err(e) => {
            println!("  VIOLATION: {e}");
            false
        }
    }
}

fn run_leases() -> bool {
    println!("== leases (region-lease admission protocol) ==");
    match leases::run() {
        Ok(report) => {
            for s in &report.scenarios {
                if s.schedules > 0 {
                    println!("  {:<42} {:>6} schedules, {:>7} steps", s.name, s.schedules, s.steps);
                } else {
                    println!("  {:<42} seeded bug caught", s.name);
                }
            }
            println!("  {} schedules explored, zero violations", report.total_schedules);
            true
        }
        Err(e) => {
            println!("  VIOLATION: {e}");
            false
        }
    }
}

fn run_totality() -> bool {
    println!("== totality (wire decoders) ==");
    match totality::run() {
        Ok(report) => {
            println!(
                "  {} frames, {} accepted (all round-tripped), {} rejected with typed errors, zero panics",
                report.frames_tried, report.accepted, report.rejected
            );
            true
        }
        Err(e) => {
            println!("  VIOLATION: {e}");
            false
        }
    }
}
