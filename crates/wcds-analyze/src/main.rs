//! `wcds-analyze` — the repo's correctness gate.
//!
//! ```text
//! wcds-analyze check            # all five engines (the CI gate)
//! wcds-analyze lints [--root P] # source lints only
//! wcds-analyze callgraph        # interprocedural analyses only
//! wcds-analyze races            # store-rebuild interleaving checker
//! wcds-analyze leases           # lease-admission interleaving checker
//! wcds-analyze totality         # decoder totality only
//! ```
//!
//! `check` and `callgraph` write the machine-readable findings to
//! `<root>/artifacts/analyze_findings.json` and compare them against
//! the checked-in baseline `crates/wcds-analyze/analyze_baseline.json`
//! (`--write-baseline` regenerates it after a fix shrinks the debt).
//!
//! Exit code 0 = clean, 1 = violations found, 2 = usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wcds_analyze::{callgraph, leases, lints, races, totality};

fn usage() -> ExitCode {
    eprintln!(
        "usage: wcds-analyze <check|lints|callgraph|races|leases|totality> \
         [--root <repo-root>] [--write-baseline]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = default_root();
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--write-baseline" => write_baseline = true,
            "check" | "lints" | "callgraph" | "races" | "leases" | "totality"
                if command.is_none() =>
            {
                command = Some(arg.clone());
            }
            _ => return usage(),
        }
    }
    let Some(command) = command else { return usage() };

    let mut clean = true;
    if command == "check" || command == "lints" {
        clean &= run_lints(&root);
    }
    if command == "check" || command == "callgraph" {
        clean &= run_callgraph(&root, write_baseline);
    }
    if command == "check" || command == "races" {
        clean &= run_races();
    }
    if command == "check" || command == "leases" {
        clean &= run_leases();
    }
    if command == "check" || command == "totality" {
        clean &= run_totality();
    }
    if clean {
        println!("wcds-analyze: clean");
        ExitCode::SUCCESS
    } else {
        println!("wcds-analyze: FAILED");
        ExitCode::FAILURE
    }
}

/// Repo root when run via `cargo run -p wcds-analyze` from anywhere in
/// the workspace.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_lints(root: &Path) -> bool {
    println!("== lints ({} strict files) ==", lints::STRICT_FILES.len());
    let report = match lints::run(root) {
        Ok(r) => r,
        Err(e) => {
            println!("  error reading source tree under {}: {e}", root.display());
            return false;
        }
    };
    for v in &report.violations {
        println!("  {v}");
    }
    for s in &report.suppressed {
        println!(
            "  suppressed {}:{} [{}] — {}",
            s.file, s.line, s.lint, s.justification
        );
    }
    println!(
        "  {} files scanned, {} violation(s), {} suppression(s), \
         {} panic site(s) workspace-wide (informational)",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        report.workspace_panic_sites
    );
    report.is_clean()
}

/// Path of the checked-in burn-down baseline, relative to the root.
const BASELINE_REL: &str = "crates/wcds-analyze/analyze_baseline.json";

fn run_callgraph(root: &Path, write_baseline: bool) -> bool {
    println!("== callgraph (interprocedural analyses) ==");
    let report = match callgraph::analyze(root) {
        Ok(r) => r,
        Err(e) => {
            println!("  error scanning workspace under {}: {e}", root.display());
            return false;
        }
    };
    println!(
        "  {} files, {} functions, {} call edges, {} entry points, {} reachable, {} ms",
        report.files, report.fns, report.edges, report.entries, report.reachable,
        report.elapsed_ms
    );

    // machine-readable artifact
    let artifact = root.join("artifacts").join("analyze_findings.json");
    let written = std::fs::create_dir_all(root.join("artifacts"))
        .and_then(|()| std::fs::write(&artifact, callgraph::report_json(&report).render()));
    match written {
        Ok(()) => println!("  findings artifact: {}", artifact.display()),
        Err(e) => println!("  warning: could not write {}: {e}", artifact.display()),
    }

    for s in &report.suppressed {
        println!("  suppressed {}:{} [{}] — {}", s.file, s.line, s.lint, s.justification);
    }

    let baseline_path = root.join(BASELINE_REL);
    if write_baseline {
        match std::fs::write(&baseline_path, callgraph::baseline_json(&report).render()) {
            Ok(()) => {
                println!(
                    "  baseline regenerated: {} ({} finding(s) in {} bucket(s))",
                    baseline_path.display(),
                    report.findings.len(),
                    callgraph::bucket(&report.findings).len()
                );
                return true;
            }
            Err(e) => {
                println!("  error writing {}: {e}", baseline_path.display());
                return false;
            }
        }
    }

    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| callgraph::parse_baseline(&text))
    {
        Ok(b) => b,
        Err(e) => {
            println!("  error loading baseline {}: {e}", baseline_path.display());
            return false;
        }
    };
    let diff = callgraph::compare_baseline(&report, &baseline);
    for ((analysis, kind, file, function), cur, base) in &diff.regressions {
        println!(
            "  NEW FINDING [{analysis}/{kind}] {file} fn {function}: {cur} found, {base} baselined"
        );
    }
    for f in &report.findings {
        let key = (
            f.analysis.to_string(),
            f.kind.to_string(),
            f.file.clone(),
            f.function.clone(),
        );
        if diff.regressions.iter().any(|(k, _, _)| *k == key) {
            println!("    {}:{} [{}] {}", f.file, f.line, f.analysis, f.message);
            for w in &f.witness {
                println!("      {w}");
            }
        }
    }
    for ((analysis, kind, file, function), cur, base) in &diff.stale {
        println!(
            "  STALE BASELINE [{analysis}/{kind}] {file} fn {function}: {cur} found, \
             {base} baselined — rerun with --write-baseline"
        );
    }
    println!(
        "  {} finding(s) in baseline, {} suppression(s), {} regression(s), {} stale entr(ies)",
        report.findings.len(),
        report.suppressed.len(),
        diff.regressions.len(),
        diff.stale.len()
    );
    diff.is_clean()
}

fn run_races() -> bool {
    println!("== races (store rebuild protocol) ==");
    match races::run() {
        Ok(report) => {
            for s in &report.scenarios {
                if s.schedules > 0 {
                    println!("  {:<42} {:>6} schedules, {:>7} steps", s.name, s.schedules, s.steps);
                } else {
                    println!("  {:<42} seeded bug caught", s.name);
                }
            }
            println!("  {} schedules explored, zero violations", report.total_schedules);
            true
        }
        Err(e) => {
            println!("  VIOLATION: {e}");
            false
        }
    }
}

fn run_leases() -> bool {
    println!("== leases (region-lease admission protocol) ==");
    match leases::run() {
        Ok(report) => {
            for s in &report.scenarios {
                if s.schedules > 0 {
                    println!("  {:<42} {:>6} schedules, {:>7} steps", s.name, s.schedules, s.steps);
                } else {
                    println!("  {:<42} seeded bug caught", s.name);
                }
            }
            println!("  {} schedules explored, zero violations", report.total_schedules);
            true
        }
        Err(e) => {
            println!("  VIOLATION: {e}");
            false
        }
    }
}

fn run_totality() -> bool {
    println!("== totality (wire decoders) ==");
    let fuzz_ok = match totality::run() {
        Ok(report) => {
            println!(
                "  {} frames, {} accepted (all round-tripped), {} rejected with typed errors, zero panics",
                report.frames_tried, report.accepted, report.rejected
            );
            true
        }
        Err(e) => {
            println!("  VIOLATION: {e}");
            false
        }
    };
    let seeds_ok = match totality::verify_seed_tag_coverage() {
        Ok((req, resp)) => {
            println!(
                "  seed corpus covers every recognised tag: {req} request, {resp} response"
            );
            true
        }
        Err(e) => {
            println!("  VIOLATION: {e}");
            false
        }
    };
    fuzz_ok && seeds_ok
}
