//! A small, comment- and string-aware Rust lexer.
//!
//! The lint engine must never flag a `unwrap()` that lives inside a
//! string literal or a doc comment. Rather than parse Rust properly,
//! this module produces a **masked** copy of a source file: identical
//! length and line structure, but with every comment, string, char and
//! byte literal blanked to spaces. Pattern scans then run on the mask,
//! where every remaining character is real code.
//!
//! While masking, `// analyze: allow(<lint>, "<justification>")`
//! pragmas are extracted from line comments with their line numbers —
//! the one piece of comment content the lint engine *does* want.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes, raw strings `r#"…"#` (any number of
//! hashes), byte strings `b"…"` / `br#"…"#`, char and byte-char
//! literals, and the char-vs-lifetime ambiguity (`'a'` vs `<'a>`).

/// One `// analyze: allow(...)` pragma found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line of the comment.
    pub line: usize,
    /// Lint name inside `allow(...)` (not yet validated).
    pub lint: String,
    /// The quoted justification; empty if missing or empty — the lint
    /// engine rejects such pragmas.
    pub justification: String,
}

/// A lexed source file: the code-only mask plus extracted pragmas.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Same character count and newline positions as the input; every
    /// comment/string/char-literal character replaced by a space.
    pub masked: String,
    /// Pragmas in source order.
    pub pragmas: Vec<Pragma>,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into its code mask and pragma list.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut masked = String::with_capacity(src.len());
    let mut pragmas = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // pushes `n` blanks, preserving any newlines in the consumed range
    let blank =
        |masked: &mut String, line: &mut usize, chars: &[char], start: usize, end: usize| {
            for &c in chars.iter().take(end).skip(start) {
                if c == '\n' {
                    masked.push('\n');
                    *line += 1;
                } else {
                    masked.push(' ');
                }
            }
        };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        let prev_ident = i > 0 && is_ident(chars[i - 1]);
        match c {
            '/' if next == Some('/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // doc comments (`///`, `//!`) document the pragma
                // syntax; only plain `//` comments suppress anything
                let is_doc = text.starts_with("///") || text.starts_with("//!");
                if !is_doc {
                    if let Some(p) = parse_pragma(&text, line) {
                        pragmas.push(p);
                    }
                }
                blank(&mut masked, &mut line, &chars, start, i);
            }
            '/' if next == Some('*') => {
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut masked, &mut line, &chars, start, i);
            }
            '"' => {
                let start = i;
                i = skip_string(&chars, i);
                blank(&mut masked, &mut line, &chars, start, i);
            }
            'r' | 'b' if !prev_ident => {
                // maybe a raw/byte literal prefix: r", r#", b", br#", b'
                if let Some(end) = skip_prefixed_literal(&chars, i) {
                    blank(&mut masked, &mut line, &chars, i, end);
                    i = end;
                } else {
                    masked.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // char literal or lifetime?
                let is_char = match next {
                    Some('\\') => true,
                    Some(_) => chars.get(i + 2) == Some(&'\''),
                    None => false,
                };
                if is_char {
                    let start = i;
                    i += 1; // opening quote
                    if chars.get(i) == Some(&'\\') {
                        i += 1; // the escape marker; skip the escaped char below
                        if matches!(chars.get(i), Some('x')) {
                            i += 2;
                        } else if matches!(chars.get(i), Some('u')) {
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i = i.saturating_sub(1);
                        }
                    }
                    i += 1; // the char itself
                    if chars.get(i) == Some(&'\'') {
                        i += 1; // closing quote
                    }
                    blank(&mut masked, &mut line, &chars, start, i);
                } else {
                    // lifetime: keep the tick as code
                    masked.push('\'');
                    i += 1;
                }
            }
            '\n' => {
                masked.push('\n');
                line += 1;
                i += 1;
            }
            _ => {
                masked.push(c);
                i += 1;
            }
        }
    }
    Lexed { masked, pragmas }
}

/// Skips a plain (escaped) string starting at the opening `"` at `i`;
/// returns the index one past the closing quote.
fn skip_string(chars: &[char], mut i: usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// At an `r` or `b` that may start a raw/byte literal: returns the end
/// index of the literal, or `None` if it is just an identifier.
fn skip_prefixed_literal(chars: &[char], start: usize) -> Option<usize> {
    let mut i = start + 1;
    if chars.get(start) == Some(&'b') {
        match chars.get(i) {
            Some('\'') => {
                // byte char b'x' or b'\n'
                i += 1;
                if chars.get(i) == Some(&'\\') {
                    i += 1;
                }
                i += 1;
                if chars.get(i) == Some(&'\'') {
                    return Some(i + 1);
                }
                return None;
            }
            Some('"') => return Some(skip_string(chars, i)),
            Some('r') => i += 1,
            _ => return None,
        }
    }
    // raw part: zero or more #, then "
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None;
    }
    i += 1;
    // scan for `"` followed by `hashes` hashes
    while i < chars.len() {
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(i)
}

/// Parses `analyze: allow(<lint>, "<justification>")` out of one line
/// comment's text.
fn parse_pragma(comment: &str, line: usize) -> Option<Pragma> {
    let rest = comment.split_once("analyze:")?.1;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.rfind(')')?;
    let inner = &inner[..close];
    let (lint, justification) = match inner.split_once(',') {
        Some((l, j)) => {
            let j = j.trim();
            let j = j.strip_prefix('"').and_then(|j| j.strip_suffix('"')).unwrap_or("");
            (l.trim().to_string(), j.to_string())
        }
        None => (inner.trim().to_string(), String::new()),
    };
    Some(Pragma { line, lint, justification })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* unwrap() */ z();\n";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("let x ="));
        assert!(lexed.masked.contains("z()"));
        assert_eq!(lexed.masked.chars().filter(|&c| c == '\n').count(), 2);
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let src = r####"let a = r#"x.unwrap()"#; let b = b"unwrap"; let c = br##"expect("q")"##;"####;
        let lexed = lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(!lexed.masked.contains("expect"));
        assert!(lexed.masked.contains("let a ="));
        assert!(lexed.masked.contains("let c ="));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = 'x'; c }";
        let lexed = lex(src);
        assert!(lexed.masked.contains("<'a>"));
        assert!(lexed.masked.contains("&'a str"));
        assert!(!lexed.masked.contains("'x'"));
        assert_eq!(lexed.masked.len(), src.len());
    }

    #[test]
    fn multiline_strings_preserve_line_numbers() {
        let src = "let s = \"line one\nline two\";\nnext();\n";
        let lexed = lex(src);
        assert_eq!(lexed.masked.chars().filter(|&c| c == '\n').count(), 3);
        // `next()` must still land on line 3
        let lines: Vec<&str> = lexed.masked.lines().collect();
        assert!(lines[2].contains("next()"));
    }

    #[test]
    fn pragma_extraction() {
        let src = "\nlet i = idx; // analyze: allow(slice-index, \"idx < N by construction\")\na[i];\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.pragmas,
            vec![Pragma {
                line: 2,
                lint: "slice-index".into(),
                justification: "idx < N by construction".into(),
            }]
        );
    }

    #[test]
    fn pragma_without_justification_is_captured_empty() {
        let src = "// analyze: allow(panic-site)\nx.unwrap();\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].lint, "panic-site");
        assert!(lexed.pragmas[0].justification.is_empty());
    }

    #[test]
    fn identifier_starting_with_r_or_b_is_not_a_literal() {
        let src = "let rng = r_value + b_flag; let raw = rbuf;";
        let lexed = lex(src);
        assert_eq!(lexed.masked, src);
    }
}
