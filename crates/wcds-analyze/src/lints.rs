//! Source lints for the wire-facing modules.
//!
//! Four lexical lints run over the comment/string-masked source
//! ([`crate::lexer`]) of the modules that parse or serve untrusted
//! bytes:
//!
//! * **panic-site** — `.unwrap()`, `.expect(`, `panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!`. A decoder or server
//!   loop must degrade to a typed error, never abort a worker.
//! * **slice-index** — `x[i]` indexing (which panics out of bounds)
//!   instead of `get`/`get_mut`.
//! * **as-truncation** — `as u8/u16/u32/i8/i16/i32`: silent
//!   truncation of a value that may carry an attacker-chosen length.
//!   Widening casts (`as u64`, `as usize`, `as f64`) are allowed.
//! * **nested-lock** — (store.rs only) acquiring a shard or topology
//!   lock while another guard is still live in the same function —
//!   the shape that deadlocks a sharded store under contention.
//!
//! `#[cfg(test)]` regions are exempt: tests may unwrap. A violation in
//! non-test code can only be silenced with a justified pragma on the
//! same or the preceding line:
//!
//! ```text
//! // analyze: allow(slice-index, "idx = hash % SHARDS is < SHARDS by construction")
//! ```
//!
//! Pragmas without a justification, or naming an unknown lint, are
//! themselves violations. Every accepted suppression is reported in
//! the summary so the exemption list stays auditable.

use crate::lexer::{lex, Pragma};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint names a pragma may reference. The last two belong to the
/// interprocedural analyses ([`crate::lockorder`]); they share the
/// pragma vocabulary so one escape hatch covers the whole gate.
pub const LINT_NAMES: [&str; 6] = [
    "panic-site",
    "slice-index",
    "as-truncation",
    "nested-lock",
    "lock-order",
    "hold-across-io",
];

/// Files under the strict policy, relative to the repo root. The bool
/// marks the one file that additionally runs the nested-lock lint.
///
/// The dynamic-graph and region-repair modules are strict because the
/// service mutation path runs them on every request: a panic there
/// kills a store worker while it holds the topology write lock. The
/// grid-partition module is strict for the same reason: the service's
/// mobile-ingest path runs it on every `create`, and its worker
/// closures execute on spawned threads where a panic poisons the join.
pub const STRICT_FILES: [(&str, bool); 12] = [
    ("crates/wcds-service/src/protocol.rs", false),
    ("crates/wcds-service/src/server.rs", false),
    // the readiness event loop multiplexes every connection on one
    // thread — a panic there takes the whole serving plane down, not
    // one worker, so it gets the same policy as the dispatcher
    ("crates/wcds-service/src/eventloop.rs", false),
    // the snapshot cell is the store's publication primitive; its
    // reader path runs on every cache hit
    ("crates/wcds-service/src/snapshot.rs", false),
    ("crates/wcds-service/src/store.rs", true),
    ("crates/wcds-service/src/client.rs", false),
    ("crates/wcds-graph/src/io.rs", false),
    ("crates/wcds-graph/src/dynamic.rs", false),
    ("crates/wcds-core/src/maintenance/region.rs", false),
    ("crates/wcds-core/src/partition.rs", false),
    // the store's harden/heal path rebuilds resilient backbones while
    // topology locks may be queued behind it — same blast radius as
    // the maintenance modules
    ("crates/wcds-core/src/resilient.rs", false),
    // the admission state machine every concurrent mutation funnels
    // through — a panic here poisons the store's lease mutex and
    // wedges every mutator
    ("crates/wcds-core/src/maintenance/lease.rs", false),
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the repo root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Lint name (one of [`LINT_NAMES`], or `pragma` for a malformed
    /// suppression).
    pub lint: String,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// One accepted suppression (reported, never silent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Path relative to the repo root.
    pub file: String,
    /// 1-based line of the suppressed site.
    pub line: usize,
    /// The suppressed lint.
    pub lint: String,
    /// The pragma's justification.
    pub justification: String,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations (empty for a clean tree).
    pub violations: Vec<Finding>,
    /// Accepted suppressions, for the audit summary.
    pub suppressed: Vec<Suppression>,
    /// Strict-policy files scanned.
    pub files_scanned: usize,
    /// Informational: panic sites in *all* workspace non-test code
    /// (not gated — tracks the burn-down).
    pub workspace_panic_sites: usize,
}

impl LintReport {
    /// True when no violation survived suppression.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A raw (pre-suppression) hit inside one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RawFinding {
    pub(crate) line: usize,
    pub(crate) lint: &'static str,
    pub(crate) message: String,
}

/// Runs the strict policy over the repo at `root`.
///
/// # Errors
///
/// I/O failure reading a source tree (a *missing* strict file is a
/// violation, not an error).
pub fn run(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for (rel, nested_lock) in STRICT_FILES {
        let path = root.join(rel);
        let src = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => {
                report.violations.push(Finding {
                    file: rel.to_string(),
                    line: 0,
                    lint: "policy".into(),
                    message: "strict-policy file missing or unreadable".into(),
                });
                continue;
            }
        };
        report.files_scanned += 1;
        let (violations, suppressed) = scan_source(&src, rel, nested_lock);
        report.violations.extend(violations);
        report.suppressed.extend(suppressed);
    }
    report.workspace_panic_sites = workspace_panic_sites(root)?;
    Ok(report)
}

/// Scans one file's source text under the strict policy; returns
/// surviving violations and accepted suppressions.
pub fn scan_source(
    src: &str,
    rel: &str,
    nested_lock: bool,
) -> (Vec<Finding>, Vec<Suppression>) {
    let lexed = lex(src);
    let excluded = test_region_lines(&lexed.masked);
    let mut raw = Vec::new();
    for (idx, line) in lexed.masked.lines().enumerate() {
        let line_no = idx + 1;
        if excluded.contains(&line_no) {
            continue;
        }
        scan_panic_sites(line, line_no, &mut raw);
        scan_slice_index(line, line_no, &mut raw);
        scan_as_truncation(line, line_no, &mut raw);
    }
    if nested_lock {
        for f in scan_nested_locks(&lexed.masked) {
            if !excluded.contains(&f.line) {
                raw.push(f);
            }
        }
    }
    apply_pragmas(raw, &lexed.pragmas, &excluded, rel)
}

/// Matches raw findings against pragmas. A pragma on line `L`
/// suppresses findings of its lint on lines `L` and `L + 1` (pragma
/// above the site, or trailing on the same line).
fn apply_pragmas(
    raw: Vec<RawFinding>,
    pragmas: &[Pragma],
    excluded: &std::collections::BTreeSet<usize>,
    rel: &str,
) -> (Vec<Finding>, Vec<Suppression>) {
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    let active: Vec<&Pragma> =
        pragmas.iter().filter(|p| !excluded.contains(&p.line)).collect();
    for p in &active {
        if !LINT_NAMES.contains(&p.lint.as_str()) {
            violations.push(Finding {
                file: rel.to_string(),
                line: p.line,
                lint: "pragma".into(),
                message: format!("pragma names unknown lint `{}`", p.lint),
            });
        } else if p.justification.trim().is_empty() {
            violations.push(Finding {
                file: rel.to_string(),
                line: p.line,
                lint: "pragma".into(),
                message: format!(
                    "pragma for `{}` has no justification — `// analyze: allow({}, \"why this is safe\")`",
                    p.lint, p.lint
                ),
            });
        }
    }
    for f in raw {
        let pragma = active.iter().find(|p| {
            p.lint == f.lint
                && !p.justification.trim().is_empty()
                && (p.line == f.line || p.line + 1 == f.line)
        });
        match pragma {
            Some(p) => suppressed.push(Suppression {
                file: rel.to_string(),
                line: f.line,
                lint: f.lint.to_string(),
                justification: p.justification.clone(),
            }),
            None => violations.push(Finding {
                file: rel.to_string(),
                line: f.line,
                lint: f.lint.to_string(),
                message: f.message,
            }),
        }
    }
    violations.sort_by_key(|f| f.line);
    (violations, suppressed)
}

// ---------------------------------------------------------------------
// individual lints (all operate on one masked line)

pub(crate) fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of word-bounded occurrences of `word` in `line`.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = line[from..].find(word) {
        let at = from + off;
        let before_ok = line[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok =
            line[at + word.len()..].chars().next().is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

fn prev_non_ws(line: &str, at: usize) -> Option<char> {
    line[..at].chars().rev().find(|c| !c.is_whitespace())
}

fn next_non_ws(line: &str, from: usize) -> Option<char> {
    line[from..].chars().find(|c| !c.is_whitespace())
}

pub(crate) fn scan_panic_sites(line: &str, line_no: usize, out: &mut Vec<RawFinding>) {
    for method in ["unwrap", "expect"] {
        for at in word_positions(line, method) {
            if prev_non_ws(line, at) == Some('.')
                && next_non_ws(line, at + method.len()) == Some('(')
            {
                out.push(RawFinding {
                    line: line_no,
                    lint: "panic-site",
                    message: format!(
                        ".{method}() panics on the error path — return a typed error"
                    ),
                });
            }
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for at in word_positions(line, mac) {
            if next_non_ws(line, at + mac.len()) == Some('!') {
                out.push(RawFinding {
                    line: line_no,
                    lint: "panic-site",
                    message: format!("{mac}! aborts the worker — return a typed error"),
                });
            }
        }
    }
}

/// Keywords after which a `[` opens an array/slice literal or pattern,
/// not an index expression.
const NON_INDEX_KEYWORDS: [&str; 22] = [
    "let", "in", "if", "else", "match", "return", "mut", "while", "for", "loop",
    "move", "ref", "break", "const", "static", "as", "impl", "dyn", "where",
    "use", "pub", "fn",
];

pub(crate) fn scan_slice_index(line: &str, line_no: usize, out: &mut Vec<RawFinding>) {
    for (at, c) in line.char_indices() {
        if c != '[' {
            continue;
        }
        let Some(prev) = prev_non_ws(line, at) else { continue };
        let indexes_into = match prev {
            ')' | ']' | '?' => true,
            p if is_ident(p) => {
                // extract the word ending at `prev` (ASCII source)
                let head = line[..at].trim_end();
                let start = head
                    .char_indices()
                    .rev()
                    .take_while(|&(_, c)| is_ident(c))
                    .last()
                    .map_or(0, |(i, _)| i);
                let word = &head[start..];
                // a lifetime (`&'a [u8]`) is a type position, not an index
                let lifetime = head[..start].ends_with('\'');
                !lifetime && !NON_INDEX_KEYWORDS.contains(&word)
            }
            _ => false,
        };
        if indexes_into {
            out.push(RawFinding {
                line: line_no,
                lint: "slice-index",
                message: "indexing panics out of bounds — use .get()/.get_mut()".into(),
            });
        }
    }
}

/// Narrow integer targets a hostile length could silently truncate to.
const NARROW_CASTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

fn scan_as_truncation(line: &str, line_no: usize, out: &mut Vec<RawFinding>) {
    for at in word_positions(line, "as") {
        let rest = line[at + 2..].trim_start();
        let target: String = rest.chars().take_while(|&c| is_ident(c)).collect();
        if NARROW_CASTS.contains(&target.as_str()) {
            out.push(RawFinding {
                line: line_no,
                lint: "as-truncation",
                message: format!(
                    "`as {target}` silently truncates — use {target}::try_from"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// nested-lock: a whole-file scan tracking live guards by brace depth

/// A live lock guard in the nested-lock tracker.
struct LiveGuard {
    /// Binding name, `None` for a temporary consumed within its
    /// statement.
    name: Option<String>,
    /// Brace depth at acquisition; the guard dies when depth drops
    /// below this.
    depth: usize,
}

/// Tokens that acquire a lock. `.read()` / `.write()` / `.lock()` are
/// the std primitives; `read_guard(` / `write_guard(` are the store's
/// poison-mapping wrappers.
const ACQUIRE_TOKENS: [&str; 5] =
    [".read()", ".write()", ".lock()", "read_guard(", "write_guard("];

fn scan_nested_locks(masked: &str) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    let mut line_no = 1usize;
    let bytes = masked.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => line_no += 1,
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
            }
            b';' => live.retain(|g| g.name.is_some() || g.depth != depth),
            _ => {
                if let Some(tok) = acquire_token_at(masked, i) {
                    if let Some(holding) = live.last() {
                        let held = holding.name.as_deref().unwrap_or("a temporary guard");
                        out.push(RawFinding {
                            line: line_no,
                            lint: "nested-lock",
                            message: format!(
                                "acquires a lock while `{held}` is still held — \
                                 nested acquisition deadlocks under contention"
                            ),
                        });
                    }
                    // the guard outlives its statement only when the
                    // acquisition expression itself is what `let` binds
                    // (runs straight to `;`); `let n = read_guard(l)
                    // .len();` binds the length, the guard is a
                    // temporary
                    let end = guard_expr_end(masked, i, tok);
                    let name = if masked[end..].starts_with(';') {
                        binding_name(masked, i)
                    } else {
                        None
                    };
                    live.push(LiveGuard { name, depth });
                    i += tok.len();
                    continue;
                }
                if masked[i..].starts_with("drop(") {
                    let inner: String = masked[i + 5..]
                        .chars()
                        .take_while(|&c| is_ident(c))
                        .collect();
                    live.retain(|g| g.name.as_deref() != Some(inner.as_str()));
                }
            }
        }
        i += 1;
    }
    out
}

/// The acquisition token starting at byte `i`, if any. Wrapper-call
/// tokens must not be preceded by an identifier character (so the
/// *definition* `fn read_guard<...>` and method paths don't match).
fn acquire_token_at(masked: &str, i: usize) -> Option<&'static str> {
    for tok in ACQUIRE_TOKENS {
        if masked[i..].starts_with(tok) {
            if !tok.starts_with('.') {
                let prev = masked[..i].chars().next_back();
                if prev.is_some_and(is_ident) {
                    return None;
                }
            }
            return Some(tok);
        }
    }
    None
}

/// One past the end of the acquisition expression starting with `tok`
/// at byte `i`: the matched closing paren of a wrapper call, then any
/// trailing `?`s.
fn guard_expr_end(masked: &str, i: usize, tok: &str) -> usize {
    let bytes = masked.as_bytes();
    let mut j = i + tok.len();
    if tok.ends_with('(') {
        let mut depth = 1u32;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    while let Some(c) = masked[j..].chars().next() {
        if c.is_whitespace() || c == '?' {
            j += c.len_utf8();
        } else {
            break;
        }
    }
    j
}

/// If the statement containing byte `i` is `let [mut] NAME = …`,
/// returns `NAME` (the guard outlives the statement); `None` for a
/// temporary.
fn binding_name(masked: &str, i: usize) -> Option<String> {
    let stmt_start = masked[..i]
        .rfind([';', '{', '}'])
        .map_or(0, |p| p + 1);
    let stmt = &masked[stmt_start..i];
    let after_let = stmt.split_once("let ")?.1.trim_start();
    let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let).trim_start();
    let name: String = after_mut.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

// ---------------------------------------------------------------------
// test-region exclusion

/// 1-based lines inside `#[cfg(test)] mod … { … }` regions of a
/// masked file.
pub(crate) fn test_region_lines(masked: &str) -> std::collections::BTreeSet<usize> {
    let mut excluded = std::collections::BTreeSet::new();
    let mut from = 0usize;
    while let Some(off) = masked[from..].find("#[cfg(test)]") {
        let attr_at = from + off;
        let mut i = attr_at + "#[cfg(test)]".len();
        // advance to the region's opening brace; a `;` first means a
        // brace-less item (e.g. `mod tests;`) — nothing to exclude
        let Some(body_off) = masked[i..].find(['{', ';']) else { break };
        i += body_off;
        from = i;
        if masked[i..].starts_with(';') {
            continue;
        }
        let open_line = 1 + masked[..i].matches('\n').count();
        let mut depth = 0usize;
        let mut end = masked.len();
        for (j, c) in masked[i..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let close_line = 1 + masked[..end].matches('\n').count();
        // the attribute's own line through the closing brace
        let attr_line = 1 + masked[..attr_at].matches('\n').count();
        excluded.extend(attr_line.min(open_line)..=close_line);
        from = end;
    }
    excluded
}

// ---------------------------------------------------------------------
// informational workspace-wide panic census

/// Counts panic sites in non-test code across every `src/` tree in the
/// workspace (informational; not a gate).
fn workspace_panic_sites(root: &Path) -> io::Result<usize> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let mut count = 0usize;
    for path in files {
        let Ok(src) = fs::read_to_string(&path) else { continue };
        let lexed = lex(&src);
        let excluded = test_region_lines(&lexed.masked);
        let mut raw = Vec::new();
        for (idx, line) in lexed.masked.lines().enumerate() {
            if !excluded.contains(&(idx + 1)) {
                scan_panic_sites(line, idx + 1, &mut raw);
            }
        }
        count += raw.len();
    }
    Ok(count)
}

/// Every `// analyze: allow(…)` pragma in non-test workspace code,
/// with file, line, lint, and justification — the raw material for the
/// per-lint suppression budgets pinned in the gate test. Scans the
/// same trees as [`workspace_panic_sites`] (every `crates/*/src` plus
/// the root `src/`), so a new suppression *anywhere* shows up here.
///
/// # Errors
///
/// I/O failure walking a source tree.
pub fn pragma_census(root: &Path) -> io::Result<Vec<Suppression>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let Ok(src) = fs::read_to_string(&path) else { continue };
        let rel = path
            .strip_prefix(root)
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|_| path.to_string_lossy().into_owned());
        let lexed = lex(&src);
        let excluded = test_region_lines(&lexed.masked);
        for p in lexed.pragmas {
            if excluded.contains(&p.line) {
                continue;
            }
            out.push(Suppression {
                file: rel.clone(),
                line: p.line,
                lint: p.lint,
                justification: p.justification,
            });
        }
    }
    Ok(out)
}

pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<Finding> {
        scan_source(src, "test.rs", true).0
    }

    #[test]
    fn unwrap_and_expect_calls_are_flagged() {
        let v = violations("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "panic-site");
        assert_eq!(v[0].line, 1);
        let v = violations("fn f(x: Option<u8>) -> u8 {\n    x.expect(\"set\")\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn non_panicking_lookalikes_are_not_flagged() {
        // combinators, our own method named like std's, strings, comments
        let clean = concat!(
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n",
            "fn g(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 1) }\n",
            "fn h(s: &mut S) { s.call(1); } // .unwrap() in a comment\n",
            "const MSG: &str = \"never unwrap() this\";\n",
        );
        assert!(violations(clean).is_empty(), "{:?}", violations(clean));
    }

    #[test]
    fn panic_family_macros_are_flagged() {
        for src in [
            "fn f() { panic!(\"boom\"); }\n",
            "fn f() { unreachable!() }\n",
            "fn f() { todo!() }\n",
            "fn f() { unimplemented!(\"later\") }\n",
        ] {
            let v = violations(src);
            assert_eq!(v.len(), 1, "{src}");
            assert_eq!(v[0].lint, "panic-site");
        }
        // a `std::panic::catch_unwind` path is not a panic site
        assert!(violations("fn f() { let _ = std::panic::catch_unwind(|| 1); }\n")
            .is_empty());
    }

    #[test]
    fn slice_indexing_is_flagged_but_type_positions_are_not() {
        let v = violations("fn f(a: &[u8], i: usize) -> u8 { a[i] }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "slice-index");
        let clean = concat!(
            "fn f(buf: &'a [u8]) -> [u8; 4] { let x: [u8; 4] = [0; 4]; x }\n",
            "fn g() { for u in [1, 2] { let _ = u; } }\n",
            "fn h(n: usize) -> Vec<u8> { vec![0u8; n] }\n",
            "#[cfg(feature = \"x\")]\n",
            "fn k(a: &[u8]) -> Option<&u8> { a.get(0) }\n",
        );
        assert!(violations(clean).is_empty(), "{:?}", violations(clean));
    }

    #[test]
    fn chained_indexing_is_flagged() {
        let v = violations("fn f(a: &[Vec<u8>], i: usize) -> u8 { a.to_vec()[i] }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "slice-index");
    }

    #[test]
    fn narrowing_as_is_flagged_widening_is_not() {
        let v = violations("fn f(n: usize) -> u32 { n as u32 }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "as-truncation");
        let clean = concat!(
            "fn f(n: u32) -> u64 { n as u64 }\n",
            "fn g(n: u32) -> usize { n as usize }\n",
            "fn h(n: u32) -> f64 { n as f64 }\n",
        );
        assert!(violations(clean).is_empty(), "{:?}", violations(clean));
    }

    #[test]
    fn nested_lock_is_flagged() {
        let src = concat!(
            "fn f(a: &RwLock<u8>, b: &RwLock<u8>) {\n",
            "    let g1 = a.read();\n",
            "    let g2 = b.write();\n",
            "}\n",
        );
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint, "nested-lock");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("g1"));
    }

    #[test]
    fn sequential_scoped_locks_are_clean() {
        // the store's own shape: read in an inner block, then write
        let src = concat!(
            "fn f(l: &RwLock<u8>) {\n",
            "    {\n",
            "        let g = read_guard(l);\n",
            "    }\n",
            "    let w = write_guard(l);\n",
            "}\n",
        );
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn explicit_drop_releases_a_guard() {
        let src = concat!(
            "fn f(a: &RwLock<u8>, b: &RwLock<u8>) {\n",
            "    let g = a.read();\n",
            "    drop(g);\n",
            "    let w = b.write();\n",
            "}\n",
        );
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = concat!(
            "fn f(l: &RwLock<Vec<u8>>) {\n",
            "    let n = read_guard(l).len();\n",
            "    let w = write_guard(l);\n",
            "}\n",
        );
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn two_acquisitions_in_one_statement_are_flagged() {
        let src = "fn f(a: &RwLock<u8>, b: &RwLock<u8>) -> u8 { *a.read() + *b.read() }\n";
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint, "nested-lock");
    }

    #[test]
    fn guard_definition_site_is_not_an_acquisition() {
        let src = "fn read_guard<T>(lock: &RwLock<T>) -> G<T> { lock.read() }\n";
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = concat!(
            "fn prod(x: Option<u8>) -> Option<u8> { x }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { super::prod(Some(1)).unwrap(); }\n",
            "}\n",
        );
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn pragma_on_previous_line_suppresses_and_is_reported() {
        let src = concat!(
            "fn f(a: &[u8], i: usize) -> u8 {\n",
            "    // analyze: allow(slice-index, \"i is masked to a.len()\")\n",
            "    a[i]\n",
            "}\n",
        );
        let (v, s) = scan_source(src, "test.rs", false);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].lint, "slice-index");
        assert_eq!(s[0].justification, "i is masked to a.len()");
    }

    #[test]
    fn pragma_does_not_suppress_other_lints_or_far_lines() {
        let src = concat!(
            "// analyze: allow(slice-index, \"justified\")\n",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            "fn g(a: &[u8]) -> u8 { a[0] }\n",
        );
        let v = violations(src);
        // the unwrap on line 2 (wrong lint) and the index on line 3
        // (out of pragma range) both survive
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn bad_pragmas_are_violations() {
        let v = violations("// analyze: allow(slice-index)\nfn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "pragma");
        assert!(v[0].message.contains("justification"));
        let v = violations("// analyze: allow(no-such-lint, \"x\")\nfn f() {}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unknown lint"));
    }

    #[test]
    fn pragma_without_justification_does_not_suppress() {
        let src = concat!(
            "// analyze: allow(panic-site)\n",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        let v = violations(src);
        assert_eq!(v.len(), 2, "{v:?}"); // the bad pragma AND the unwrap
    }
}
