//! Fixture shared helpers — the clean tree.
//!
//! The same helpers as the defective tree, total and lock-disciplined:
//! `header_tag` returns `Option`, `checksum` iterates, and `rotate`
//! finishes the snapshot **before** taking `journal`, keeping every
//! path on the one agreed `cache` → `journal` order.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Log {
    journal: Mutex<Vec<Vec<u8>>>,
}

/// Total: an empty frame has no tag.
pub fn header_tag(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}

/// Iterator walk — no indexing to get wrong.
pub fn checksum(buf: &[u8]) -> u64 {
    let mut sum = 0u64;
    for &b in buf {
        sum = sum.wrapping_add(u64::from(b));
    }
    sum
}

/// Takes only `journal`; callers drop `cache` first.
pub fn audit(log: &Log, entry: &[u8]) {
    let mut j = log.journal.lock();
    j.push(entry.to_vec());
}

/// Snapshot first (takes and releases `cache`), then `journal` — the
/// same order `flush` uses via [`audit`].
pub fn rotate(log: &Log, store: &store::Store) {
    let bytes = store::Store::snapshot(store);
    let mut j = log.journal.lock();
    j.push(bytes);
}

/// Parks on the channel — safe because no caller holds a lock here.
pub fn drain(rx: &Receiver<u64>, upto: u64) {
    while let Ok(seq) = rx.recv() {
        if seq >= upto {
            break;
        }
    }
}
