//! Fixture topology store — the clean tree.
//!
//! Same function set as the defective store, each shape corrected:
//! `promote` and `demote` agree on the `topo` → `published` order (the
//! edge exists, the cycle does not); `flush` snapshots the cache and
//! drops its guard before the journal is touched; `refresh` reads the
//! epoch in a scope and drains the channel lock-free.

use std::sync::mpsc::Receiver;
use std::sync::{Mutex, RwLock};

pub struct Topology {
    pub epoch: u64,
}

pub struct Store {
    topo: RwLock<Topology>,
    published: RwLock<Topology>,
    cache: Mutex<Vec<u8>>,
    events: Receiver<u64>,
}

impl Store {
    pub fn mutate(&self, buf: &[u8]) -> u64 {
        let sum = util::checksum(buf);
        self.seal(sum)
    }

    fn seal(&self, sum: u64) -> u64 {
        sum.rotate_left(1)
    }

    pub fn promote(&self, epoch: u64) {
        let mut t = self.topo.write();
        let mut p = self.published.write();
        p.epoch = epoch;
        t.epoch = epoch;
    }

    pub fn demote(&self, epoch: u64) {
        let mut t = self.topo.write();
        let mut p = self.published.write();
        p.epoch = epoch;
        t.epoch = epoch;
    }

    pub fn flush(&self, log: &util::Log) {
        let snapshot = {
            let c = self.cache.lock();
            c.clone()
        };
        util::audit(log, &snapshot);
    }

    pub fn snapshot(&self) -> Vec<u8> {
        let c = self.cache.lock();
        c.clone()
    }

    pub fn refresh(&self) {
        let epoch = {
            let t = self.topo.read();
            t.epoch
        };
        util::drain(&self.events, epoch);
    }
}
