//! Fixture wire protocol — the clean tree.
//!
//! Mirrors the defective tree shape for shape: `decode` totals over
//! truncated frames via `Option`, and `read_frame` propagates IO
//! errors instead of unwrapping. The analyzer must report nothing.

use std::io::Read;

pub enum Frame {
    Ping,
    Data(u8),
}

pub enum WireError {
    Truncated,
    UnknownTag(u8),
    Io,
}

pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
    match util::header_tag(buf) {
        Some(tag) => body_for(tag, buf),
        None => Err(WireError::Truncated),
    }
}

fn body_for(tag: u8, _buf: &[u8]) -> Result<Frame, WireError> {
    match tag {
        0 => Ok(Frame::Ping),
        1 => Ok(Frame::Data(tag)),
        other => Err(WireError::UnknownTag(other)),
    }
}

pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut hdr = [0u8; 2];
    match r.read_exact(&mut hdr) {
        Ok(()) => decode(&hdr),
        Err(_) => Err(WireError::Io),
    }
}
