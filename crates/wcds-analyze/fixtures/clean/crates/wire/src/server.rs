//! Fixture connection pump — the clean tree.
//!
//! Same shapes as the defective pump, done right: the pending buffer
//! is cloned inside a scope so the state guard dies **before** the
//! socket write; `poll`'s statement-temporary guard dies at the `;`;
//! `wait_ready` hands its guard to the condvar, which releases it
//! while parked. Three negative controls for the hold-across-io
//! analysis.

use std::io;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

pub struct ConnState {
    pub pending: Vec<u8>,
    pub ready: bool,
}

pub struct Conn {
    state: Mutex<ConnState>,
    cv: Condvar,
}

impl Conn {
    pub fn pump(&self, out: &mut TcpStream) -> io::Result<()> {
        let pending = {
            let state = self.state.lock();
            state.pending.clone()
        };
        out.write_all(&pending)?;
        Ok(())
    }

    pub fn poll(&self, out: &mut TcpStream) -> io::Result<()> {
        let depth = self.state.lock().pending.len();
        out.write_all(&[depth.min(255) as u8])?;
        Ok(())
    }

    pub fn wait_ready(&self) {
        let mut g = self.state.lock();
        while !g.ready {
            g = self.cv.wait(g);
        }
    }
}
