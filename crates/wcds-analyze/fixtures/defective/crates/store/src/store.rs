//! Fixture topology store — the defective tree.
//!
//! PLANTED (panic-reachability #2): `mutate` is a wire entry point and
//! feeds the raw payload to [`util::checksum`], whose walk indexes one
//! past the end.
//!
//! PLANTED (lock-order #1): `promote` takes `topo` then `published`;
//! `demote` takes them in the opposite order — two peers promoting and
//! demoting concurrently deadlock.
//!
//! PLANTED (lock-order #2, interprocedural): `flush` holds `cache`
//! while [`util::audit`] takes `journal`; [`util::rotate`] holds
//! `journal` while `Store::snapshot` takes `cache`.
//!
//! PLANTED (hold-across-io #2): `refresh` holds the `topo` read lock
//! across [`util::drain`], which parks on a channel receive.

use std::sync::mpsc::Receiver;
use std::sync::{Mutex, RwLock};

pub struct Topology {
    pub epoch: u64,
}

pub struct Store {
    topo: RwLock<Topology>,
    published: RwLock<Topology>,
    cache: Mutex<Vec<u8>>,
    events: Receiver<u64>,
}

impl Store {
    pub fn mutate(&self, buf: &[u8]) -> u64 {
        let sum = util::checksum(buf);
        self.seal(sum)
    }

    fn seal(&self, sum: u64) -> u64 {
        sum.rotate_left(1)
    }

    pub fn promote(&self, epoch: u64) {
        let mut t = self.topo.write();
        let mut p = self.published.write();
        p.epoch = epoch;
        t.epoch = epoch;
    }

    pub fn demote(&self, epoch: u64) {
        let mut p = self.published.write();
        let mut t = self.topo.write();
        t.epoch = epoch;
        p.epoch = epoch;
    }

    pub fn flush(&self, log: &util::Log) {
        let c = self.cache.lock();
        util::audit(log, &c);
    }

    pub fn snapshot(&self) -> Vec<u8> {
        let c = self.cache.lock();
        c.clone()
    }

    pub fn refresh(&self) {
        let t = self.topo.read();
        util::drain(&self.events, t.epoch);
    }
}
