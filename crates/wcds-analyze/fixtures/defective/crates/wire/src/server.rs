//! Fixture connection pump — the defective tree.
//!
//! PLANTED (hold-across-io #1): `pump` flushes the pending buffer to
//! the peer **while still holding** the connection-state mutex — one
//! slow reader stalls every thread that touches this connection.

use std::io;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct ConnState {
    pub pending: Vec<u8>,
}

pub struct Conn {
    state: Mutex<ConnState>,
}

impl Conn {
    pub fn pump(&self, out: &mut TcpStream) -> io::Result<()> {
        let state = self.state.lock();
        out.write_all(&state.pending)?;
        Ok(())
    }
}
