//! Fixture wire protocol — the defective tree.
//!
//! PLANTED (panic-reachability #1): `decode` is a wire entry point and
//! calls [`util::header_tag`], which unwraps on truncated frames — a
//! one-byte hostile frame panics the worker.
//!
//! PLANTED (suppression control): `read_frame` unwraps too, behind a
//! justified pragma — the golden test asserts it lands in
//! `suppressed`, not `findings`.

use std::io::Read;

pub enum Frame {
    Ping,
    Data(u8),
}

pub enum WireError {
    UnknownTag(u8),
}

pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
    let tag = util::header_tag(buf);
    body_for(tag, buf)
}

fn body_for(tag: u8, _buf: &[u8]) -> Result<Frame, WireError> {
    match tag {
        0 => Ok(Frame::Ping),
        1 => Ok(Frame::Data(tag)),
        other => Err(WireError::UnknownTag(other)),
    }
}

pub fn read_frame(r: &mut impl Read) -> Frame {
    let mut hdr = [0u8; 2];
    // analyze: allow(panic-site, "fixture control: proves a justified pragma reaches the suppressed list")
    r.read_exact(&mut hdr).unwrap();
    match decode(&hdr) {
        Ok(f) => f,
        Err(_) => Frame::Ping,
    }
}
