//! Fixture shared helpers — the defective tree.
//!
//! The defects that live here are only *reachable* through the `wire`
//! and `store` entry points; the analyzer must attribute them to this
//! crate with a witness path that starts at the entry.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Log {
    journal: Mutex<Vec<Vec<u8>>>,
}

/// PLANTED (panic-reachability #1): panics on an empty frame.
pub fn header_tag(buf: &[u8]) -> u8 {
    *buf.first().unwrap()
}

/// PLANTED (panic-reachability #2): `i <= buf.len()` walks one past
/// the end — the final iteration indexes out of bounds.
pub fn checksum(buf: &[u8]) -> u64 {
    let mut sum = 0u64;
    let mut i = 0;
    while i <= buf.len() {
        sum = sum.wrapping_add(buf[i] as u64);
        i += 1;
    }
    sum
}

/// PLANTED (lock-order #2, callee side): takes `journal` — deadlocks
/// against [`rotate`]'s `journal`-then-`cache` order when the caller
/// already holds `cache`.
pub fn audit(log: &Log, entry: &[u8]) {
    let mut j = log.journal.lock();
    j.push(entry.to_vec());
}

/// PLANTED (lock-order #2, reverse edge): holds `journal` while
/// `Store::snapshot` takes `cache`.
pub fn rotate(log: &Log, store: &store::Store) {
    let mut j = log.journal.lock();
    j.push(store::Store::snapshot(store));
}

/// PLANTED (hold-across-io #2, callee side): parks on the event
/// channel — callers holding a lock stall every waiter.
pub fn drain(rx: &Receiver<u64>, upto: u64) {
    while let Ok(seq) = rx.recv() {
        if seq >= upto {
            break;
        }
    }
}
