//! The acceptance gate: the real tree is clean, and the gate actually
//! bites when a forbidden construct is injected.

use std::path::PathBuf;
use wcds_analyze::{leases, lints, races, totality};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_real_tree_is_lint_clean() {
    let report = lints::run(&repo_root()).expect("source tree readable");
    assert!(
        report.is_clean(),
        "violations in the real tree:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.files_scanned, lints::STRICT_FILES.len());
    // the sanctioned suppressions: the store's shard-index pragma plus
    // the partition kernel's in-bounds-by-construction indexing. All
    // must surface in the audit summary with justifications; the counts
    // are pinned so a new pragma anywhere in the strict set forces this
    // test (and the exemption audit) to be revisited
    assert_eq!(
        report.suppressed.len(),
        10,
        "suppression list changed — update the audit: {:?}",
        report.suppressed
    );
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.file.ends_with("store.rs")
                && s.lint == "slice-index"
                && s.justification.contains("SHARDS")),
        "expected the store.rs slice-index suppression in the summary: {:?}",
        report.suppressed
    );
    let partition: Vec<_> = report
        .suppressed
        .iter()
        .filter(|s| s.file.ends_with("partition.rs"))
        .collect();
    assert_eq!(
        partition.len(),
        9,
        "partition.rs exemptions changed — re-audit: {partition:?}"
    );
    assert!(
        partition.iter().all(|s| s.lint == "slice-index"),
        "partition.rs may only suppress slice-index (kernel indexing): {partition:?}"
    );
}

#[test]
fn an_injected_unwrap_in_protocol_rs_is_caught_with_file_and_line() {
    let path = repo_root().join("crates/wcds-service/src/protocol.rs");
    let src = std::fs::read_to_string(&path).expect("protocol.rs readable");
    // inject a forbidden unwrap into the take() helper, in memory
    let poisoned = src.replacen(
        "self.pos = end;",
        "self.pos = end;\n        let _ = self.buf.first().unwrap();",
        1,
    );
    assert_ne!(poisoned, src, "injection anchor not found in protocol.rs");
    let injected_line = 1 + poisoned
        .lines()
        .position(|l| l.contains("self.buf.first().unwrap()"))
        .expect("injected line present");

    let (violations, _) =
        lints::scan_source(&poisoned, "crates/wcds-service/src/protocol.rs", false);
    assert!(
        violations.iter().any(|v| v.lint == "panic-site"
            && v.line == injected_line
            && v.file.ends_with("protocol.rs")),
        "injected unwrap not reported at line {injected_line}: {violations:?}"
    );
    // the report renders as file:line for editor navigation
    let rendered = violations
        .iter()
        .find(|v| v.lint == "panic-site")
        .map(ToString::to_string)
        .unwrap_or_default();
    assert!(
        rendered.starts_with(&format!(
            "crates/wcds-service/src/protocol.rs:{injected_line}:"
        )),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn an_injected_nested_lock_in_store_rs_is_caught() {
    let path = repo_root().join("crates/wcds-service/src/store.rs");
    let src = std::fs::read_to_string(&path).expect("store.rs readable");
    // acquire the shard map lock while the topology guard is live
    let poisoned = src.replacen(
        "let mut topo = write_guard(&entry.topo)?;",
        "let mut topo = write_guard(&entry.topo)?;\n        \
         let _peek = read_guard(self.shard(name))?;",
        1,
    );
    assert_ne!(poisoned, src, "injection anchor not found in store.rs");
    let (violations, _) =
        lints::scan_source(&poisoned, "crates/wcds-service/src/store.rs", true);
    assert!(
        violations
            .iter()
            .any(|v| v.lint == "nested-lock" && v.message.contains("topo")),
        "injected nested acquisition not reported: {violations:?}"
    );
}

#[test]
fn race_checker_is_exhaustive_and_clean() {
    let report = races::run().unwrap_or_else(|e| panic!("race checker: {e}"));
    // at least every 2-thread/4-step schedule: C(8,4) = 70
    assert!(
        report.total_schedules >= 70,
        "only {} schedules explored",
        report.total_schedules
    );
    let coverage = report
        .scenarios
        .iter()
        .find(|s| s.name.starts_with("coverage"))
        .expect("coverage probe ran");
    assert_eq!(coverage.schedules, 70, "coverage probe must visit all C(8,4) schedules");
}

#[test]
fn lease_checker_is_exhaustive_and_clean() {
    let report = leases::run().unwrap_or_else(|e| panic!("lease checker: {e}"));
    assert!(
        report.total_schedules >= 70,
        "only {} schedules explored",
        report.total_schedules
    );
    let coverage = report
        .scenarios
        .iter()
        .find(|s| s.name.starts_with("coverage"))
        .expect("coverage probe ran");
    assert_eq!(coverage.schedules, 70, "coverage probe must visit all C(8,4) schedules");
    // the two seeded-bug rows prove sensitivity
    assert_eq!(
        report.scenarios.iter().filter(|s| s.name.starts_with("broken")).count(),
        2,
        "both seeded-bug scenarios must run"
    );
}

#[test]
fn decoders_are_total_over_the_candidate_set() {
    let report = totality::run().unwrap_or_else(|e| panic!("totality: {e}"));
    assert!(report.frames_tried > 65_000);
    assert_eq!(
        report.accepted + report.rejected,
        2 * report.frames_tried,
        "every candidate must hit both decoders"
    );
}
