//! The acceptance gate: the real tree is clean, and the gate actually
//! bites when a forbidden construct is injected — lexically (the
//! injection tests) and interprocedurally (the planted-defect fixture
//! trees under `fixtures/`).

use std::collections::BTreeMap;
use std::path::PathBuf;
use wcds_analyze::{callgraph, leases, lints, races, reach, totality};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_root(tree: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(tree)
}

#[test]
fn the_real_tree_is_lint_clean() {
    let report = lints::run(&repo_root()).expect("source tree readable");
    assert!(
        report.is_clean(),
        "violations in the real tree:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.files_scanned, lints::STRICT_FILES.len());
    // the sanctioned suppressions: the store's shard-index pragma plus
    // the partition kernel's in-bounds-by-construction indexing. All
    // must surface in the audit summary with justifications; the counts
    // are pinned so a new pragma anywhere in the strict set forces this
    // test (and the exemption audit) to be revisited
    assert_eq!(
        report.suppressed.len(),
        10,
        "suppression list changed — update the audit: {:?}",
        report.suppressed
    );
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.file.ends_with("store.rs")
                && s.lint == "slice-index"
                && s.justification.contains("SHARDS")),
        "expected the store.rs slice-index suppression in the summary: {:?}",
        report.suppressed
    );
    let partition: Vec<_> = report
        .suppressed
        .iter()
        .filter(|s| s.file.ends_with("partition.rs"))
        .collect();
    assert_eq!(
        partition.len(),
        9,
        "partition.rs exemptions changed — re-audit: {partition:?}"
    );
    assert!(
        partition.iter().all(|s| s.lint == "slice-index"),
        "partition.rs may only suppress slice-index (kernel indexing): {partition:?}"
    );
}

#[test]
fn an_injected_unwrap_in_protocol_rs_is_caught_with_file_and_line() {
    let path = repo_root().join("crates/wcds-service/src/protocol.rs");
    let src = std::fs::read_to_string(&path).expect("protocol.rs readable");
    // inject a forbidden unwrap into the take() helper, in memory
    let poisoned = src.replacen(
        "self.pos = end;",
        "self.pos = end;\n        let _ = self.buf.first().unwrap();",
        1,
    );
    assert_ne!(poisoned, src, "injection anchor not found in protocol.rs");
    let injected_line = 1 + poisoned
        .lines()
        .position(|l| l.contains("self.buf.first().unwrap()"))
        .expect("injected line present");

    let (violations, _) =
        lints::scan_source(&poisoned, "crates/wcds-service/src/protocol.rs", false);
    assert!(
        violations.iter().any(|v| v.lint == "panic-site"
            && v.line == injected_line
            && v.file.ends_with("protocol.rs")),
        "injected unwrap not reported at line {injected_line}: {violations:?}"
    );
    // the report renders as file:line for editor navigation
    let rendered = violations
        .iter()
        .find(|v| v.lint == "panic-site")
        .map(ToString::to_string)
        .unwrap_or_default();
    assert!(
        rendered.starts_with(&format!(
            "crates/wcds-service/src/protocol.rs:{injected_line}:"
        )),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn an_injected_nested_lock_in_store_rs_is_caught() {
    let path = repo_root().join("crates/wcds-service/src/store.rs");
    let src = std::fs::read_to_string(&path).expect("store.rs readable");
    // acquire the shard map lock while the topology guard is live
    let poisoned = src.replacen(
        "let mut topo = write_guard(&entry.topo)?;",
        "let mut topo = write_guard(&entry.topo)?;\n        \
         let _peek = read_guard(self.shard(name))?;",
        1,
    );
    assert_ne!(poisoned, src, "injection anchor not found in store.rs");
    let (violations, _) =
        lints::scan_source(&poisoned, "crates/wcds-service/src/store.rs", true);
    assert!(
        violations
            .iter()
            .any(|v| v.lint == "nested-lock" && v.message.contains("topo")),
        "injected nested acquisition not reported: {violations:?}"
    );
}

/// The golden snapshot: every planted defect in the defective fixture
/// tree is caught, attributed to the exact file, line, and analysis,
/// and nothing else is reported.
#[test]
fn all_planted_fixture_defects_are_caught_and_attributed() {
    let report = callgraph::analyze(&fixture_root("defective")).expect("fixture tree readable");
    let got: Vec<(String, usize, &str, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.analysis, f.kind))
        .collect();
    let want: Vec<(String, usize, &str, &str)> = vec![
        // refresh holds `topo` across util::drain's channel recv
        ("crates/store/src/store.rs".into(), 68, "hold-across-io", "held-across-blocking"),
        // pump writes the socket under the connection-state mutex
        ("crates/wire/src/server.rs".into(), 22, "hold-across-io", "held-across-blocking"),
        // promote/demote disagree on the topo/published order
        ("crates/store/src/store.rs".into(), 51, "lock-order", "lock-cycle"),
        // flush→audit vs rotate→snapshot: cache⇄journal through calls
        ("crates/store/src/store.rs".into(), 58, "lock-order", "lock-cycle"),
        // decode → util::header_tag unwraps on a truncated frame
        ("crates/util/src/lib.rs".into(), 16, "panic-reachability", "panic-site"),
        // mutate → util::checksum walks one past the end
        ("crates/util/src/lib.rs".into(), 25, "panic-reachability", "slice-index"),
    ];
    assert_eq!(got, want, "fixture findings diverged from the golden snapshot");

    // defects planted in `util` must carry a witness path that starts
    // at the *entry point* in another crate — attribution, not just
    // detection
    for f in report.findings.iter().filter(|f| f.analysis == "panic-reachability") {
        assert!(
            f.witness.first().is_some_and(|w| w.starts_with("entry ")),
            "reachability witness must begin at the entry: {:?}",
            f.witness
        );
        assert!(
            f.witness.len() >= 2,
            "cross-crate defect needs a multi-hop witness: {:?}",
            f.witness
        );
    }
    // both lock-cycle findings name the full cycle
    let cycles: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.kind == "lock-cycle")
        .map(|f| f.message.as_str())
        .collect();
    assert!(cycles.iter().any(|m| m.contains("published") && m.contains("topo")));
    assert!(cycles.iter().any(|m| m.contains("cache") && m.contains("journal")));

    // the justified-pragma escape hatch works inside fixtures too: the
    // read_frame unwrap is suppressed, audited, and not a finding
    assert_eq!(report.suppressed.len(), 1, "exactly one fixture suppression");
    let s = &report.suppressed[0];
    assert!(s.file.ends_with("wire/src/protocol.rs") && s.lint == "panic-site");
}

/// Negative control: the clean tree mirrors every defective shape
/// (scoped guards, consistent lock order, condvar hand-off, totalised
/// helpers) and must produce nothing at all.
#[test]
fn the_clean_fixture_tree_reports_nothing() {
    let report = callgraph::analyze(&fixture_root("clean")).expect("fixture tree readable");
    assert!(
        report.findings.is_empty(),
        "clean tree produced findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.analysis, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.suppressed.is_empty(), "clean tree needs no pragmas");
    // same entry-point table drives both trees
    assert_eq!(report.entries, 3, "decode, read_frame, and mutate match the entry table");
}

/// The real tree matches the checked-in burn-down baseline exactly —
/// no new findings, no stale entries — and holds the structural
/// invariants the analyses depend on.
#[test]
fn the_real_tree_matches_the_analyzer_baseline() {
    let started = std::time::Instant::now();
    let report = callgraph::analyze(&repo_root()).expect("workspace readable");
    let baseline_text =
        std::fs::read_to_string(repo_root().join("crates/wcds-analyze/analyze_baseline.json"))
            .expect("checked-in baseline present");
    let baseline = callgraph::parse_baseline(&baseline_text).expect("baseline parses");
    let diff = callgraph::compare_baseline(&report, &baseline);
    assert!(
        diff.regressions.is_empty(),
        "new findings above the baseline:\n{:#?}",
        diff.regressions
    );
    assert!(
        diff.stale.is_empty(),
        "baseline is stale (debt shrank) — rerun `wcds-analyze callgraph --write-baseline`:\n{:#?}",
        diff.stale
    );

    // every wire entry point in the table exists in the tree — a
    // rename would silently unroot the reachability analysis
    assert_eq!(
        report.entries,
        reach::ENTRY_POINTS.len(),
        "entry-point table out of sync with the source tree"
    );
    // the burn-down is slice-index debt only: every reachable panic
    // site has been fixed or justified, and no lock-order cycle exists
    assert!(
        report.findings.iter().all(|f| f.kind == "slice-index"),
        "non-slice-index findings appeared: {:?}",
        report
            .findings
            .iter()
            .filter(|f| f.kind != "slice-index")
            .map(|f| format!("{}:{} [{}]", f.file, f.line, f.kind))
            .collect::<Vec<_>>()
    );
    // the analyzer suppression set is pinned like the lexical one:
    // the worker pool's receiver-sharing mutex, plus the justified
    // slice-index pragmas (which suppress the reachability view of
    // the same sites) — nothing else
    let hold: Vec<_> =
        report.suppressed.iter().filter(|s| s.lint == "hold-across-io").collect();
    assert_eq!(hold.len(), 1, "hold-across-io suppressions changed: {hold:?}");
    assert!(hold[0].file.ends_with("server.rs"));
    assert!(
        report
            .suppressed
            .iter()
            .filter(|s| s.lint != "hold-across-io")
            .all(|s| s.lint == "slice-index"
                && (s.file.ends_with("partition.rs") || s.file.ends_with("store.rs"))),
        "unexpected analyzer suppression: {:?}",
        report.suppressed
    );
    assert_eq!(report.suppressed.len(), 11, "suppression count moved: {:?}", report.suppressed);
    // the whole interprocedural pass stays interactive — CI budget
    let elapsed = started.elapsed();
    assert!(elapsed.as_secs() < 10, "analyze took {elapsed:?}, budget is 10 s");
}

/// Per-lint pragma budgets over the whole workspace: a new suppression
/// anywhere — strict files or not — fails this test with the full
/// justification diff, forcing the budget (and the audit) to move in
/// the same commit.
#[test]
fn workspace_pragma_budgets_are_pinned_per_lint() {
    let census = lints::pragma_census(&repo_root()).expect("workspace readable");
    let mut by_lint: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for s in &census {
        by_lint
            .entry(s.lint.as_str())
            .or_default()
            .push(format!("{}:{} — {}", s.file, s.line, s.justification));
    }
    // budgets count pragma *lines*, not suppressed findings — one
    // partition.rs pragma covers three findings on its line
    let budgets: &[(&str, usize)] = &[
        ("panic-site", 0),
        ("slice-index", 8),
        ("as-truncation", 0),
        ("nested-lock", 0),
        ("lock-order", 0),
        ("hold-across-io", 1),
    ];
    for &(lint, budget) in budgets {
        let have = by_lint.get(lint).map_or(&[][..], Vec::as_slice);
        assert_eq!(
            have.len(),
            budget,
            "pragma budget for `{lint}` is {budget}, found {}:\n{}",
            have.len(),
            have.join("\n")
        );
    }
    // no pragma outside the budgeted lint vocabulary
    let total: usize = budgets.iter().map(|&(_, b)| b).sum();
    assert_eq!(
        census.len(),
        total,
        "a pragma with an unbudgeted lint name exists: {:?}",
        census
            .iter()
            .filter(|s| !budgets.iter().any(|&(l, _)| l == s.lint))
            .collect::<Vec<_>>()
    );
    // justifications are load-bearing prose, not placeholders
    for s in &census {
        assert!(
            s.justification.trim().len() >= 15,
            "suppression at {}:{} has a throwaway justification: {:?}",
            s.file,
            s.line,
            s.justification
        );
    }
}

/// The seed corpus keeps pace with the protocol: every tag either
/// decoder recognises has a canonical seed (probed, not hand-listed).
#[test]
fn totality_seeds_cover_the_full_tag_range() {
    match totality::verify_seed_tag_coverage() {
        Ok((req, resp)) => {
            assert_eq!((req, resp), (13, 15), "protocol tag ranges moved — update the pins");
        }
        Err(e) => panic!("{e}"),
    }
}

#[test]
fn race_checker_is_exhaustive_and_clean() {
    let report = races::run().unwrap_or_else(|e| panic!("race checker: {e}"));
    // at least every 2-thread/4-step schedule: C(8,4) = 70
    assert!(
        report.total_schedules >= 70,
        "only {} schedules explored",
        report.total_schedules
    );
    let coverage = report
        .scenarios
        .iter()
        .find(|s| s.name.starts_with("coverage"))
        .expect("coverage probe ran");
    assert_eq!(coverage.schedules, 70, "coverage probe must visit all C(8,4) schedules");
}

#[test]
fn lease_checker_is_exhaustive_and_clean() {
    let report = leases::run().unwrap_or_else(|e| panic!("lease checker: {e}"));
    assert!(
        report.total_schedules >= 70,
        "only {} schedules explored",
        report.total_schedules
    );
    let coverage = report
        .scenarios
        .iter()
        .find(|s| s.name.starts_with("coverage"))
        .expect("coverage probe ran");
    assert_eq!(coverage.schedules, 70, "coverage probe must visit all C(8,4) schedules");
    // the two seeded-bug rows prove sensitivity
    assert_eq!(
        report.scenarios.iter().filter(|s| s.name.starts_with("broken")).count(),
        2,
        "both seeded-bug scenarios must run"
    );
}

#[test]
fn decoders_are_total_over_the_candidate_set() {
    let report = totality::run().unwrap_or_else(|e| panic!("totality: {e}"));
    assert!(report.frames_tried > 65_000);
    assert_eq!(
        report.accepted + report.rejected,
        2 * report.frames_tried,
        "every candidate must hit both decoders"
    );
}
