//! Backbone broadcast versus blind flooding.
//!
//! §1: "the number of nodes responsible for routing and broadcasting
//! can be reduced to the number of nodes in the backbone". With a
//! *weakly*-connected backbone the dominators alone cannot relay (two
//! dominators may be two hops apart), so the forwarding set is the WCDS
//! plus one gray gateway per dominator-graph spanning-tree edge that
//! needs one — still `Θ(|U|)` nodes, far below the `n` transmissions of
//! blind flooding.

use std::collections::{BTreeSet, VecDeque};
use wcds_core::Wcds;
use wcds_graph::{traversal, Graph, NodeId};

/// A precomputed broadcast forwarding set for a WCDS backbone.
///
/// # Examples
///
/// ```
/// use wcds_core::algo2::AlgorithmTwo;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
/// use wcds_routing::BroadcastPlan;
///
/// // a star: the backbone is just the hub, so a broadcast costs two
/// // transmissions (leaf + hub) instead of nine (flooding)
/// let g = generators::star(8);
/// let result = AlgorithmTwo::new().construct(&g);
/// let plan = BroadcastPlan::for_wcds(&g, &result.wcds);
/// let outcome = plan.simulate(&g, 1);
/// assert!(outcome.full_coverage);
/// assert_eq!(outcome.transmissions, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastPlan {
    forwarders: BTreeSet<NodeId>,
}

/// The result of simulating one broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// Whether every node of the graph received the message.
    pub full_coverage: bool,
    /// Number of transmissions performed (source + forwarding
    /// retransmissions that were reached).
    pub transmissions: usize,
    /// Nodes that never received the message (empty on full coverage).
    pub uncovered: Vec<NodeId>,
}

impl BroadcastPlan {
    /// Every node forwards: blind flooding.
    pub fn flooding(g: &Graph) -> Self {
        Self { forwarders: g.nodes().collect() }
    }

    /// Backbone forwarding: the WCDS plus the gateways of one
    /// dominator-graph spanning tree (dominator pairs at spanner
    /// distance ≤ 3 — the paper's algorithms need only distance-2
    /// links, but a general valid WCDS may need 3).
    ///
    /// # Panics
    ///
    /// Panics if `wcds` is not a valid WCDS of `g`.
    pub fn for_wcds(g: &Graph, wcds: &Wcds) -> Self {
        assert!(wcds.is_valid(g), "broadcast plan requires a valid WCDS");
        Self::for_backbone(&wcds.weakly_induced_subgraph(g), wcds)
    }

    /// Same plan as [`Self::for_wcds`], built from a precomputed
    /// weakly-induced spanner. Callers that already hold the spanner
    /// (the service bundle caches it) skip its reconstruction and the
    /// validity re-check; `spanner` must be
    /// `wcds.weakly_induced_subgraph(g)` for a graph on which `wcds`
    /// is valid.
    ///
    /// # Panics
    ///
    /// Panics if the dominators are not mutually reachable within
    /// spanner distance 3 — the case when `wcds` is not a valid WCDS
    /// of the graph `spanner` came from.
    pub fn for_backbone(spanner: &Graph, wcds: &Wcds) -> Self {
        let mut forwarders: BTreeSet<NodeId> = wcds.nodes().iter().copied().collect();
        if wcds.len() <= 1 {
            return Self { forwarders };
        }
        let doms = wcds.nodes();

        // spanning tree over the dominator graph, recording the interior
        // gateway nodes of each multi-hop tree edge
        // only distance-≤3 links matter, so each per-dominator search is
        // radius-bounded; identical trees within the ball (`bfs_tree_bounded`)
        // — and a dominator's tree is computed only if it is dequeued
        // while the spanning tree is still incomplete (later dequeues
        // cannot add anything, so skipping their searches changes no
        // output, and on a patch-heavy service path it skips most)
        let mut in_tree: BTreeSet<NodeId> = [doms[0]].into();
        let mut frontier = VecDeque::from([doms[0]]);
        while in_tree.len() < doms.len() {
            let Some(cur) = frontier.pop_front() else { break };
            let (dist, parents) = traversal::bfs_tree_bounded(spanner, cur, 3);
            for &next in doms {
                if in_tree.contains(&next) {
                    continue;
                }
                if let Some(d) = dist[next] {
                    if d <= 3 {
                        in_tree.insert(next);
                        frontier.push_back(next);
                        if d >= 2 {
                            // dist[next] ≤ 3 ⇒ the parent chain back
                            // to `cur` exists in this bounded tree
                            if let Some(path) =
                                traversal::path_from_parents(&parents, cur, next)
                            {
                                forwarders.extend(&path[1..path.len() - 1]);
                            } else {
                                debug_assert!(false, "in-ball node lost its parent path");
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(
            in_tree.len(),
            doms.len(),
            "dominator graph at radius 3 must be connected for a valid WCDS"
        );
        Self { forwarders }
    }

    /// The forwarding set.
    pub fn forwarders(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.forwarders.iter().copied()
    }

    /// Size of the forwarding set.
    pub fn forwarder_count(&self) -> usize {
        self.forwarders.len()
    }

    /// Simulates a broadcast from `source`: the source transmits, then
    /// every forwarder retransmits once upon first reception.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn simulate(&self, g: &Graph, source: NodeId) -> BroadcastOutcome {
        let mut informed = vec![false; g.node_count()];
        let mut transmissions = 0;
        let mut queue = VecDeque::from([source]);
        let mut transmitted = vec![false; g.node_count()];
        informed[source] = true;
        while let Some(u) = queue.pop_front() {
            if transmitted[u] {
                continue;
            }
            transmitted[u] = true;
            transmissions += 1;
            for v in g.adj(u) {
                if !informed[v] {
                    informed[v] = true;
                    if self.forwarders.contains(&v) {
                        queue.push_back(v);
                    }
                }
            }
        }
        let uncovered: Vec<NodeId> = g.nodes().filter(|&u| !informed[u]).collect();
        BroadcastOutcome { full_coverage: uncovered.is_empty(), transmissions, uncovered }
    }
}

/// The broadcast as a real distributed protocol: the source transmits,
/// and a node retransmits on first reception iff it is in the
/// forwarding set. Equivalent to [`BroadcastPlan::simulate`] but run on
/// the message-passing simulator, so schedules, faults, and message
/// accounting all apply.
#[derive(Debug)]
pub struct BroadcastNode {
    forwarder: bool,
    source: bool,
    informed: bool,
}

impl BroadcastNode {
    /// A node of the broadcast protocol.
    pub fn new(forwarder: bool, source: bool) -> Self {
        Self { forwarder, source, informed: false }
    }

    /// Whether the message reached this node.
    pub fn informed(&self) -> bool {
        self.informed
    }
}

impl wcds_sim::Protocol for BroadcastNode {
    type Message = ();

    fn on_start(&mut self, ctx: &mut wcds_sim::Context<'_, ()>) {
        if self.source {
            self.informed = true;
            ctx.broadcast(());
        }
    }

    fn on_message(&mut self, _from: usize, _msg: (), ctx: &mut wcds_sim::Context<'_, ()>) {
        if !self.informed {
            self.informed = true;
            if self.forwarder {
                ctx.broadcast(());
            }
        }
    }

    fn message_kind(_msg: &()) -> &'static str {
        "DATA"
    }
}

impl BroadcastPlan {
    /// Runs the broadcast as a distributed protocol under `schedule`.
    ///
    /// Returns the outcome plus the simulator report (rounds, message
    /// accounting). The transmission count equals
    /// [`BroadcastPlan::simulate`]'s under a fault-free schedule.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or the protocol fails to
    /// quiesce.
    pub fn run_distributed(
        &self,
        g: &Graph,
        source: NodeId,
        schedule: wcds_sim::Schedule,
    ) -> (BroadcastOutcome, wcds_sim::SimReport) {
        assert!(source < g.node_count(), "source out of range");
        let mut sim = wcds_sim::Simulator::new(g, |u| {
            BroadcastNode::new(self.forwarders.contains(&u), u == source)
        });
        let report = sim.run(schedule).expect("broadcast quiesces");
        let uncovered: Vec<NodeId> =
            g.nodes().filter(|&u| !sim.node(u).informed()).collect();
        let outcome = BroadcastOutcome {
            full_coverage: uncovered.is_empty(),
            transmissions: report.messages.total() as usize,
            uncovered,
        };
        (outcome, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_core::algo1::AlgorithmOne;
    use wcds_core::algo2::AlgorithmTwo;
    use wcds_core::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    #[test]
    fn flooding_covers_with_n_transmissions() {
        let g = generators::connected_gnp(30, 0.12, 1);
        let out = BroadcastPlan::flooding(&g).simulate(&g, 0);
        assert!(out.full_coverage);
        assert_eq!(out.transmissions, 30);
    }

    #[test]
    fn backbone_broadcast_covers_from_any_source() {
        let g = generators::connected_gnp(40, 0.1, 3);
        let result = AlgorithmTwo::new().construct(&g);
        let plan = BroadcastPlan::for_wcds(&g, &result.wcds);
        for source in [0, 13, 39] {
            let out = plan.simulate(&g, source);
            assert!(out.full_coverage, "source {source}: uncovered {:?}", out.uncovered);
        }
    }

    #[test]
    fn backbone_beats_flooding_on_dense_udgs() {
        for seed in 0..4 {
            let udg = UnitDiskGraph::build(deploy::uniform(250, 6.0, 6.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let result = AlgorithmTwo::new().construct(udg.graph());
            let plan = BroadcastPlan::for_wcds(udg.graph(), &result.wcds);
            let backbone = plan.simulate(udg.graph(), 0);
            let flood = BroadcastPlan::flooding(udg.graph()).simulate(udg.graph(), 0);
            assert!(backbone.full_coverage);
            assert!(
                backbone.transmissions * 2 < flood.transmissions,
                "seed {seed}: backbone {} vs flood {}",
                backbone.transmissions,
                flood.transmissions
            );
        }
    }

    #[test]
    fn works_for_algorithm1_backbones_too() {
        let g = generators::connected_gnp(35, 0.12, 7);
        let result = AlgorithmOne::new().construct(&g);
        let plan = BroadcastPlan::for_wcds(&g, &result.wcds);
        let out = plan.simulate(&g, 5);
        assert!(out.full_coverage, "uncovered: {:?}", out.uncovered);
    }

    #[test]
    fn transmissions_bounded_by_forwarders_plus_source() {
        let g = generators::connected_gnp(45, 0.09, 9);
        let result = AlgorithmTwo::new().construct(&g);
        let plan = BroadcastPlan::for_wcds(&g, &result.wcds);
        let out = plan.simulate(&g, 0);
        assert!(out.transmissions <= plan.forwarder_count() + 1);
    }

    #[test]
    fn distributed_broadcast_matches_analytic_simulation() {
        let g = generators::connected_gnp(50, 0.09, 5);
        let result = AlgorithmTwo::new().construct(&g);
        let plan = BroadcastPlan::for_wcds(&g, &result.wcds);
        let analytic = plan.simulate(&g, 3);
        let (distributed, report) =
            plan.run_distributed(&g, 3, wcds_sim::Schedule::synchronous());
        assert!(distributed.full_coverage);
        assert_eq!(distributed.transmissions, analytic.transmissions);
        assert_eq!(report.messages.of_kind("DATA") as usize, analytic.transmissions);
    }

    #[test]
    fn distributed_broadcast_covers_under_async_schedules() {
        let g = generators::connected_gnp(40, 0.1, 8);
        let result = AlgorithmTwo::new().construct(&g);
        let plan = BroadcastPlan::for_wcds(&g, &result.wcds);
        for seed in 0..6 {
            let (out, _) = plan.run_distributed(&g, 0, wcds_sim::Schedule::asynchronous(seed));
            assert!(out.full_coverage, "seed {seed}: {:?}", out.uncovered);
        }
    }

    #[test]
    fn singleton_broadcast() {
        let g = Graph::empty(1);
        let w = Wcds::from_mis(vec![0]);
        let plan = BroadcastPlan::for_wcds(&g, &w);
        let out = plan.simulate(&g, 0);
        assert!(out.full_coverage);
        assert_eq!(out.transmissions, 1);
    }
}
