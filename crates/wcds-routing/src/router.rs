//! Clusterhead unicast routing over the weakly-induced spanner.

use std::collections::BTreeMap;
use wcds_core::Wcds;
use wcds_graph::{traversal, Graph, NodeId};

/// A clusterhead router built from a WCDS.
///
/// Structure (§4.2 of the paper):
///
/// * every node is assigned a **clusterhead** — its smallest-ID adjacent
///   MIS dominator (MIS dominators are their own clusterheads);
/// * the **dominator graph** links MIS dominators that are ≤ 3 hops
///   apart *through the spanner*, remembering the gateway nodes of one
///   shortest black path (the `2HopDomList` / `3HopDomList` state);
/// * per-dominator **routing tables** give, for every destination
///   dominator, the next dominator on a shortest dominator-level path.
///
/// A packet from `s` to `t` travels `s → head(s) ⇝ head(t) → t`, with
/// each dominator-to-dominator leg expanded through its recorded
/// gateways. Adjacent pairs short-circuit to the direct edge, as the
/// paper prescribes.
///
/// # Examples
///
/// ```
/// use wcds_core::algo2::AlgorithmTwo;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
/// use wcds_routing::BackboneRouter;
///
/// let g = generators::path(9);
/// let result = AlgorithmTwo::new().construct(&g);
/// let router = BackboneRouter::build(&g, &result.wcds);
/// let path = router.route(0, 8).expect("connected");
/// assert_eq!(path.first(), Some(&0));
/// assert_eq!(path.last(), Some(&8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackboneRouter {
    spanner: Graph,
    clusterhead: Vec<Option<NodeId>>,
    /// dominator → (neighbor dominator → interior gateway nodes of one
    /// shortest black path)
    dom_links: BTreeMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>>,
    /// Sorted dominator ids — the row/column index space of `next_hop`.
    heads: Vec<NodeId>,
    /// Flattened `heads.len()²` first-hop matrix: entry `s·k + d` holds
    /// the head *index* of the next dominator from `heads[s]` toward
    /// `heads[d]` ([`UNREACHABLE`] when no dominator-level path exists,
    /// and on the diagonal). Dense on purpose: the table is rebuilt on
    /// every bundle refresh, holds one `u32` per entry instead of a
    /// tree node, and O(heads²) entries is already the routing-state
    /// size this scheme carries by design.
    next_hop: Vec<u32>,
    graph_edges: Graph,
}

/// `next_hop` sentinel: no dominator-level route.
const UNREACHABLE: u32 = u32::MAX;

impl BackboneRouter {
    /// Builds the router state from a WCDS of `g`.
    ///
    /// # Panics
    ///
    /// Panics if the WCDS is invalid for `g` (every node must have an
    /// adjacent MIS dominator or be one).
    pub fn build(g: &Graph, wcds: &Wcds) -> Self {
        let spanner = wcds.weakly_induced_subgraph(g);
        let heads = wcds.mis_dominators();
        let is_head = g.membership(heads);

        // clusterhead assignment: self, else smallest adjacent head
        let clusterhead: Vec<Option<NodeId>> = g
            .nodes()
            .map(|u| {
                if is_head[u] {
                    Some(u)
                } else {
                    g.adj(u).find(|&v| is_head[v])
                }
            })
            .collect();
        assert!(
            g.nodes().all(|u| clusterhead[u].is_some()),
            "WCDS does not dominate the graph"
        );

        // dominator adjacency through the spanner: radius-3 BFS from
        // each head, keeping heads at distance ≤ 3 with the path interior
        let mut scratch = LinkScratch::default();
        let dom_links: BTreeMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>> = heads
            .iter()
            .map(|&h| (h, head_links(&mut scratch, &spanner, heads, h)))
            .collect();
        let (heads, next_hop) = dominator_tables(&dom_links);

        Self { spanner, clusterhead, dom_links, heads, next_hop, graph_edges: g.clone() }
    }

    /// Rebuilds the router after a topology delta that did **not**
    /// change the dominator sets, reusing everything outside the
    /// disturbed region. Byte-identical to `build(g, wcds)`
    /// (debug-asserted here, release-asserted in tests):
    ///
    /// * the spanner CSR is spliced with the delta edges touching the
    ///   (unchanged) WCDS;
    /// * clusterheads are re-derived only for delta endpoints — every
    ///   other node feeds the assignment rule identical inputs;
    /// * dominator links are re-derived only for heads within spanner
    ///   distance 3 of a spanner-delta endpoint: distances *from* the
    ///   endpoint set agree across the splice (truncate any path at its
    ///   first endpoint), so a farther head's radius-3 ball — and its
    ///   deterministic bounded BFS tree — is unchanged;
    /// * dominator-level tables are rebuilt from the links (global by
    ///   nature, but they hold only `O(|heads|²)` ids).
    ///
    /// `added`/`removed` are the graph edge delta in the post-mutation
    /// id space; `g` may have one more node than the router was built
    /// for (a join), never fewer.
    ///
    /// # Panics
    ///
    /// Panics if `wcds` stopped dominating `g`, or if the delta
    /// contradicts the recorded spanner (both mean the caller's
    /// "dominators unchanged" promise was broken).
    pub fn patched(
        &self,
        g: &Graph,
        wcds: &Wcds,
        added: &[(NodeId, NodeId)],
        removed: &[(NodeId, NodeId)],
    ) -> Self {
        let heads = wcds.mis_dominators();
        let is_head = g.membership(heads);
        let in_wcds = g.membership(wcds.nodes());

        let touches_wcds =
            |&(a, b): &(NodeId, NodeId)| in_wcds[a] || in_wcds[b];
        let s_added: Vec<(NodeId, NodeId)> =
            added.iter().filter(|e| touches_wcds(e)).copied().collect();
        let s_removed: Vec<(NodeId, NodeId)> =
            removed.iter().filter(|e| touches_wcds(e)).copied().collect();
        let spanner = self.spanner.spliced(g.node_count(), &s_added, &s_removed);
        debug_assert_eq!(
            spanner,
            wcds.weakly_induced_subgraph(g),
            "spliced spanner diverged from the weakly-induced subgraph"
        );

        let mut clusterhead = self.clusterhead.clone();
        clusterhead.resize(g.node_count(), None);
        let endpoints: std::collections::BTreeSet<NodeId> =
            added.iter().chain(removed).flat_map(|&(a, b)| [a, b]).collect();
        for &u in &endpoints {
            clusterhead[u] = if is_head[u] {
                Some(u)
            } else {
                g.adj(u).find(|&v| is_head[v])
            };
        }
        assert!(
            g.nodes().all(|u| clusterhead[u].is_some()),
            "WCDS does not dominate the graph"
        );

        // heads beyond spanner distance 3 of the spanner delta keep
        // their links verbatim
        let mut dom_links = self.dom_links.clone();
        if !s_added.is_empty() || !s_removed.is_empty() {
            let s_endpoints =
                s_added.iter().chain(&s_removed).flat_map(|&(a, b)| [a, b]);
            let dist = traversal::multi_source_bfs(&spanner, s_endpoints);
            let mut scratch = LinkScratch::default();
            for &h in heads {
                if dist[h].is_some_and(|d| d <= 3) {
                    dom_links.insert(h, head_links(&mut scratch, &spanner, heads, h));
                }
            }
        }
        let (heads, next_hop) = dominator_tables(&dom_links);

        let patched =
            Self { spanner, clusterhead, dom_links, heads, next_hop, graph_edges: g.clone() };
        debug_assert_eq!(patched, Self::build(g, wcds), "patched router diverged");
        patched
    }

    /// The weakly-induced spanner the router routes over.
    pub fn spanner(&self) -> &Graph {
        &self.spanner
    }

    /// The clusterhead of node `u`. Total: an out-of-range or
    /// somehow-unassigned node is its own clusterhead (such a route
    /// then reports unreachable rather than killing the worker).
    pub fn clusterhead(&self, u: NodeId) -> NodeId {
        debug_assert!(u < self.clusterhead.len(), "node {u} out of range");
        self.clusterhead.get(u).copied().flatten().unwrap_or(u)
    }

    /// Routing-table size (number of destination entries) at dominator
    /// `h`, or `None` if `h` is not a dominator.
    pub fn table_size(&self, h: NodeId) -> Option<usize> {
        let hi = self.heads.binary_search(&h).ok()?;
        let k = self.heads.len();
        Some(
            self.next_hop[hi * k..(hi + 1) * k]
                .iter()
                .filter(|&&hop| hop != UNREACHABLE)
                .count(),
        )
    }

    /// Total routing-state entries across all dominators.
    pub fn total_state(&self) -> usize {
        self.next_hop.iter().filter(|&&hop| hop != UNREACHABLE).count()
            + self.dom_links.values().map(|l| l.values().map(|g| g.len() + 1).sum::<usize>()).sum::<usize>()
    }

    /// Routes a packet from `s` to `t`, returning the node path
    /// (inclusive of both ends).
    ///
    /// Returns `None` when the backbone has no dominator-level route
    /// (disconnected network).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn route(&self, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        if s == t {
            return Some(vec![s]);
        }
        // adjacent pairs use the direct edge (paper: "a single hop")
        if self.graph_edges.has_edge(s, t) {
            return Some(vec![s, t]);
        }
        let hs = self.clusterhead(s);
        let ht = self.clusterhead(t);
        let mut path = vec![s];
        if hs != s {
            path.push(hs);
        }
        // dominator chain hs ⇝ ht
        let ti = self.heads.binary_search(&ht).ok()?;
        let k = self.heads.len();
        let mut cur = hs;
        while cur != ht {
            let ci = self.heads.binary_search(&cur).ok()?;
            let hop = self.next_hop[ci * k + ti];
            if hop == UNREACHABLE {
                return None;
            }
            let next = self.heads[hop as usize];
            for &gw in &self.dom_links[&cur][&next] {
                path.push(gw);
            }
            path.push(next);
            cur = next;
        }
        if ht != t {
            path.push(t);
        }
        // collapse accidental duplicates (e.g. s adjacent to a gateway)
        path.dedup();
        // the destination can appear mid-path as a gateway of the
        // dominator chain; deliver at the first visit
        if let Some(pos) = path.iter().position(|&x| x == t) {
            path.truncate(pos + 1);
        }
        Some(path)
    }

    /// Checks a route only uses spanner edges (except the permitted
    /// direct first hop between adjacent endpoints).
    pub fn route_uses_spanner(&self, path: &[NodeId]) -> bool {
        if path.len() == 2 {
            return self.graph_edges.has_edge(path[0], path[1]);
        }
        path.windows(2).all(|w| self.spanner.has_edge(w[0], w[1]))
    }

    /// Measures the stretch of routing between `s` and `t`: routed hops
    /// divided by shortest-path hops in `G`. `None` if unroutable.
    pub fn stretch(&self, g: &Graph, s: NodeId, t: NodeId) -> Option<f64> {
        let routed = self.route(s, t)?.len() as f64 - 1.0;
        let shortest = traversal::hop_distance(g, s, t)? as f64;
        if shortest == 0.0 {
            return Some(1.0);
        }
        Some(routed / shortest)
    }
}

/// Reusable state for [`head_links`] — epoch-stamped visitation so the
/// per-head radius-3 sweep never clears or reallocates its BFS arrays
/// between heads. One scratch serves a whole `build` or `patched` pass.
#[derive(Default)]
struct LinkScratch {
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    stamp: Vec<u32>,
    epoch: u32,
    queue: std::collections::VecDeque<NodeId>,
}

/// One head's spanner links: every other head at spanner distance ≤ 3,
/// with the interior gateway nodes of the bounded-BFS shortest path.
///
/// The BFS visits neighbors in adjacency order and keeps the first
/// discovered parent, so the link paths are byte-identical to the
/// previous `traversal::bfs_tree_bounded` + `path_from_parents` walk.
fn head_links(
    scratch: &mut LinkScratch,
    spanner: &Graph,
    heads: &[NodeId],
    h: NodeId,
) -> BTreeMap<NodeId, Vec<NodeId>> {
    let n = spanner.node_count();
    if scratch.stamp.len() < n {
        scratch.stamp.resize(n, 0);
        scratch.dist.resize(n, 0);
        scratch.parent.resize(n, 0);
    }
    if scratch.epoch == u32::MAX {
        scratch.stamp.iter_mut().for_each(|s| *s = 0);
        scratch.epoch = 0;
    }
    scratch.epoch += 1;
    let epoch = scratch.epoch;
    scratch.queue.clear();
    scratch.queue.push_back(h);
    scratch.stamp[h] = epoch;
    scratch.dist[h] = 0;
    while let Some(u) = scratch.queue.pop_front() {
        let d = scratch.dist[u];
        if d == 3 {
            continue;
        }
        for v in spanner.adj(u) {
            if scratch.stamp[v] != epoch {
                scratch.stamp[v] = epoch;
                scratch.dist[v] = d + 1;
                scratch.parent[v] = u;
                scratch.queue.push_back(v);
            }
        }
    }
    let mut links = BTreeMap::new();
    for &other in heads {
        if other == h || scratch.stamp[other] != epoch {
            continue;
        }
        // interior gateways of the BFS path h ⇝ other (≤ 2 nodes)
        let mut interior = Vec::new();
        let mut cur = scratch.parent[other];
        while cur != h {
            interior.push(cur);
            cur = scratch.parent[cur];
        }
        interior.reverse();
        links.insert(other, interior);
    }
    links
}

/// Dominator-level routing tables: BFS on the dominator graph from each
/// head, recording the first dominator hop toward every destination.
/// Returns the sorted head list and the flat row-major first-hop matrix
/// (`UNREACHABLE` off the backbone and on the diagonal).
///
/// The dominator graph is indexed into dense arrays once, so the
/// `O(|heads|²)` all-pairs sweep runs over integer adjacency lists and
/// writes each BFS straight into its matrix row — zero allocation per
/// head; this sweep runs on every bundle rebuild, so it has to stay
/// allocation-light. Neighbor lists preserve the sorted key order of
/// `dom_links`, which keeps the BFS tie-breaking (and therefore every
/// table entry) identical to a map-based walk.
fn dominator_tables(
    dom_links: &BTreeMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>>,
) -> (Vec<NodeId>, Vec<u32>) {
    let heads: Vec<NodeId> = dom_links.keys().copied().collect();
    let k = heads.len();
    assert!(k < UNREACHABLE as usize, "head count overflows the hop matrix");
    let index_of = |v: NodeId| -> u32 {
        match heads.binary_search(&v) {
            Ok(i) => i as u32,
            Err(_) => {
                debug_assert!(false, "link target {v} is not a head");
                UNREACHABLE // dropped below; the entry stays unroutable
            }
        }
    };
    let adj: Vec<Vec<u32>> = heads
        .iter()
        .map(|h| {
            dom_links[h].keys().map(|&nb| index_of(nb)).filter(|&ix| ix != UNREACHABLE).collect()
        })
        .collect();

    let mut next_hop = vec![UNREACHABLE; k * k];
    let mut queue = std::collections::VecDeque::new();
    for hi in 0..k {
        let row = &mut next_hop[hi * k..(hi + 1) * k];
        queue.clear();
        queue.push_back(hi as u32);
        row[hi] = hi as u32; // sentinel: the source is its own hop
        while let Some(cur) = queue.pop_front() {
            for &nb in &adj[cur as usize] {
                if row[nb as usize] == UNREACHABLE {
                    row[nb as usize] = if cur as usize == hi { nb } else { row[cur as usize] };
                    queue.push_back(nb);
                }
            }
        }
        row[hi] = UNREACHABLE; // the diagonal carries no entry
    }
    (heads, next_hop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_core::algo2::AlgorithmTwo;
    use wcds_core::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    fn router_for(g: &Graph) -> BackboneRouter {
        let result = AlgorithmTwo::new().construct(g);
        BackboneRouter::build(g, &result.wcds)
    }

    #[test]
    fn clusterheads_are_adjacent_dominators() {
        let g = generators::connected_gnp(40, 0.1, 1);
        let result = AlgorithmTwo::new().construct(&g);
        let router = BackboneRouter::build(&g, &result.wcds);
        let heads = result.wcds.mis_dominators();
        for u in g.nodes() {
            let h = router.clusterhead(u);
            assert!(heads.contains(&h));
            assert!(h == u || g.has_edge(u, h));
        }
    }

    #[test]
    fn routes_exist_and_are_walks_in_g() {
        let g = generators::connected_gnp(40, 0.1, 5);
        let router = router_for(&g);
        for s in 0..10 {
            for t in 30..40 {
                let path = router.route(s, t).expect("connected network routes");
                assert_eq!(*path.first().unwrap(), s);
                assert_eq!(*path.last().unwrap(), t);
                for w in path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "non-edge in route {path:?}");
                }
            }
        }
    }

    #[test]
    fn routes_use_spanner_edges() {
        let g = generators::connected_gnp(50, 0.08, 9);
        let router = router_for(&g);
        for s in [0, 7, 13] {
            for t in [44, 31, 22] {
                let path = router.route(s, t).unwrap();
                assert!(router.route_uses_spanner(&path), "route {path:?} leaves the spanner");
            }
        }
    }

    #[test]
    fn self_and_neighbor_routes_are_trivial() {
        let g = generators::path(5);
        let router = router_for(&g);
        assert_eq!(router.route(2, 2), Some(vec![2]));
        assert_eq!(router.route(1, 2), Some(vec![1, 2]));
    }

    #[test]
    fn stretch_is_bounded_on_udgs() {
        for seed in 0..4 {
            let udg = UnitDiskGraph::build(deploy::uniform(120, 6.0, 6.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let router = router_for(udg.graph());
            let mut worst: f64 = 1.0;
            for s in (0..120).step_by(17) {
                for t in (0..120).step_by(13) {
                    if s == t || udg.graph().has_edge(s, t) {
                        continue;
                    }
                    let st = router.stretch(udg.graph(), s, t).expect("routable");
                    worst = worst.max(st);
                }
            }
            // clusterhead routing pays ≤ 3 spanner hops per graph hop
            // plus the two end legs: hops ≤ 3h + 5, so stretch ≤ 5.5 at
            // h = 2 and below 4 for longer routes
            assert!(worst <= 5.5, "seed {seed}: worst stretch {worst}");
        }
    }

    #[test]
    fn table_sizes_scale_with_dominator_count() {
        let g = generators::connected_gnp(60, 0.07, 2);
        let result = AlgorithmTwo::new().construct(&g);
        let router = BackboneRouter::build(&g, &result.wcds);
        let heads = result.wcds.mis_dominators();
        for &h in heads {
            let size = router.table_size(h).unwrap();
            assert!(size < heads.len());
        }
        assert!(router.table_size(heads.len() + 1000).is_none() || heads.contains(&(heads.len() + 1000)));
        assert!(router.total_state() > 0 || heads.len() <= 1);
    }

    #[test]
    fn routes_visit_the_destination_exactly_once() {
        let g = generators::connected_gnp(60, 0.08, 21);
        let router = router_for(&g);
        for s in 0..12 {
            for t in 40..60 {
                let path = router.route(s, t).unwrap();
                assert_eq!(path.iter().filter(|&&x| x == t).count(), 1, "path {path:?}");
                assert_eq!(*path.last().unwrap(), t);
            }
        }
    }

    #[test]
    fn routing_on_star_goes_through_center() {
        let g = generators::star(6);
        let router = router_for(&g);
        let path = router.route(1, 4).unwrap();
        assert_eq!(path, vec![1, 0, 4]);
    }

    #[test]
    fn patched_router_equals_a_fresh_build_across_moves() {
        // drift nodes through a dynamic UDG; whenever the WCDS survives a
        // move, patch the router and demand byte-identity with a rebuild
        let mut udg = wcds_graph::DynamicUdg::new(deploy::uniform(150, 5.0, 5.0, 3), 1.0);
        let mut result = AlgorithmTwo::new().construct(udg.graph());
        let mut router = BackboneRouter::build(udg.graph(), &result.wcds);
        let mut patches = 0;
        for step in 0..40usize {
            let u = (step * 13) % udg.node_count();
            let p = udg.points()[u];
            let dx = if step % 2 == 0 { 0.3 } else { -0.3 };
            let delta =
                udg.move_node(u, wcds_geom::Point::new((p.x + dx).clamp(0.0, 5.0), p.y));
            let fresh = AlgorithmTwo::new().construct(udg.graph());
            if fresh.wcds == result.wcds {
                router = router.patched(udg.graph(), &result.wcds, &delta.added, &delta.removed);
                // release-mode identity, not just the debug_assert inside
                assert_eq!(router, BackboneRouter::build(udg.graph(), &result.wcds));
                patches += 1;
            } else {
                result = fresh;
                router = BackboneRouter::build(udg.graph(), &result.wcds);
            }
        }
        assert!(patches >= 10, "only {patches} patchable moves in the trace");
    }

    #[test]
    fn patched_router_handles_joins() {
        let mut udg = wcds_graph::DynamicUdg::new(deploy::uniform(120, 4.0, 4.0, 11), 1.0);
        let mut result = AlgorithmTwo::new().construct(udg.graph());
        let mut router = BackboneRouter::build(udg.graph(), &result.wcds);
        let mut patches = 0;
        for step in 0..20usize {
            let p = wcds_geom::Point::new(
                (step as f64 * 0.61) % 4.0,
                (step as f64 * 0.37) % 4.0,
            );
            let (_, delta) = udg.add_node(p);
            let fresh = AlgorithmTwo::new().construct(udg.graph());
            if fresh.wcds == result.wcds {
                router = router.patched(udg.graph(), &result.wcds, &delta.added, &delta.removed);
                assert_eq!(router, BackboneRouter::build(udg.graph(), &result.wcds));
                patches += 1;
            } else {
                result = fresh;
                router = BackboneRouter::build(udg.graph(), &result.wcds);
            }
        }
        assert!(patches >= 5, "only {patches} patchable joins in the trace");
    }
}
