//! Clusterhead unicast routing over the weakly-induced spanner.

use std::collections::BTreeMap;
use wcds_core::Wcds;
use wcds_graph::{traversal, Graph, NodeId};

/// A clusterhead router built from a WCDS.
///
/// Structure (§4.2 of the paper):
///
/// * every node is assigned a **clusterhead** — its smallest-ID adjacent
///   MIS dominator (MIS dominators are their own clusterheads);
/// * the **dominator graph** links MIS dominators that are ≤ 3 hops
///   apart *through the spanner*, remembering the gateway nodes of one
///   shortest black path (the `2HopDomList` / `3HopDomList` state);
/// * per-dominator **routing tables** give, for every destination
///   dominator, the next dominator on a shortest dominator-level path.
///
/// A packet from `s` to `t` travels `s → head(s) ⇝ head(t) → t`, with
/// each dominator-to-dominator leg expanded through its recorded
/// gateways. Adjacent pairs short-circuit to the direct edge, as the
/// paper prescribes.
///
/// # Examples
///
/// ```
/// use wcds_core::algo2::AlgorithmTwo;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
/// use wcds_routing::BackboneRouter;
///
/// let g = generators::path(9);
/// let result = AlgorithmTwo::new().construct(&g);
/// let router = BackboneRouter::build(&g, &result.wcds);
/// let path = router.route(0, 8).expect("connected");
/// assert_eq!(path.first(), Some(&0));
/// assert_eq!(path.last(), Some(&8));
/// ```
#[derive(Debug, Clone)]
pub struct BackboneRouter {
    spanner: Graph,
    clusterhead: Vec<Option<NodeId>>,
    /// dominator → (neighbor dominator → interior gateway nodes of one
    /// shortest black path)
    dom_links: BTreeMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>>,
    /// dominator → (destination dominator → next dominator)
    next_dom: BTreeMap<NodeId, BTreeMap<NodeId, NodeId>>,
    graph_edges: Graph,
}

impl BackboneRouter {
    /// Builds the router state from a WCDS of `g`.
    ///
    /// # Panics
    ///
    /// Panics if the WCDS is invalid for `g` (every node must have an
    /// adjacent MIS dominator or be one).
    pub fn build(g: &Graph, wcds: &Wcds) -> Self {
        let spanner = wcds.weakly_induced_subgraph(g);
        let heads = wcds.mis_dominators();
        let is_head = g.membership(heads);

        // clusterhead assignment: self, else smallest adjacent head
        let clusterhead: Vec<Option<NodeId>> = g
            .nodes()
            .map(|u| {
                if is_head[u] {
                    Some(u)
                } else {
                    g.neighbors(u).iter().copied().find(|&v| is_head[v])
                }
            })
            .collect();
        assert!(
            g.nodes().all(|u| clusterhead[u].is_some()),
            "WCDS does not dominate the graph"
        );

        // dominator adjacency through the spanner: BFS from each head,
        // keeping heads at distance ≤ 3 with the path interior
        let mut dom_links: BTreeMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>> = BTreeMap::new();
        for &h in heads {
            let (dist, parents) = traversal::bfs_tree(&spanner, h);
            let mut links = BTreeMap::new();
            for &other in heads {
                if other == h {
                    continue;
                }
                if let Some(d) = dist[other] {
                    if d <= 3 {
                        let path = traversal::path_from_parents(&parents, h, other)
                            .expect("reachable");
                        links.insert(other, path[1..path.len() - 1].to_vec());
                    }
                }
            }
            dom_links.insert(h, links);
        }

        // dominator-level routing tables: BFS on the dominator graph
        let mut next_dom: BTreeMap<NodeId, BTreeMap<NodeId, NodeId>> = BTreeMap::new();
        for &h in heads {
            let mut table = BTreeMap::new();
            // BFS over dominator graph from h
            let mut first_hop: BTreeMap<NodeId, NodeId> = BTreeMap::new();
            let mut queue = std::collections::VecDeque::from([h]);
            let mut seen: std::collections::BTreeSet<NodeId> = [h].into();
            while let Some(cur) = queue.pop_front() {
                for &nb in dom_links[&cur].keys() {
                    if seen.insert(nb) {
                        let via = if cur == h { nb } else { first_hop[&cur] };
                        first_hop.insert(nb, via);
                        table.insert(nb, via);
                        queue.push_back(nb);
                    }
                }
            }
            next_dom.insert(h, table);
        }

        Self { spanner, clusterhead, dom_links, next_dom, graph_edges: g.clone() }
    }

    /// The clusterhead of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn clusterhead(&self, u: NodeId) -> NodeId {
        self.clusterhead[u].expect("validated at build time")
    }

    /// Routing-table size (number of destination entries) at dominator
    /// `h`, or `None` if `h` is not a dominator.
    pub fn table_size(&self, h: NodeId) -> Option<usize> {
        self.next_dom.get(&h).map(BTreeMap::len)
    }

    /// Total routing-state entries across all dominators.
    pub fn total_state(&self) -> usize {
        self.next_dom.values().map(BTreeMap::len).sum::<usize>()
            + self.dom_links.values().map(|l| l.values().map(|g| g.len() + 1).sum::<usize>()).sum::<usize>()
    }

    /// Routes a packet from `s` to `t`, returning the node path
    /// (inclusive of both ends).
    ///
    /// Returns `None` when the backbone has no dominator-level route
    /// (disconnected network).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn route(&self, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        if s == t {
            return Some(vec![s]);
        }
        // adjacent pairs use the direct edge (paper: "a single hop")
        if self.graph_edges.has_edge(s, t) {
            return Some(vec![s, t]);
        }
        let hs = self.clusterhead(s);
        let ht = self.clusterhead(t);
        let mut path = vec![s];
        if hs != s {
            path.push(hs);
        }
        // dominator chain hs ⇝ ht
        let mut cur = hs;
        while cur != ht {
            let next = *self.next_dom.get(&cur)?.get(&ht)?;
            for &gw in &self.dom_links[&cur][&next] {
                path.push(gw);
            }
            path.push(next);
            cur = next;
        }
        if ht != t {
            path.push(t);
        }
        // collapse accidental duplicates (e.g. s adjacent to a gateway)
        path.dedup();
        // the destination can appear mid-path as a gateway of the
        // dominator chain; deliver at the first visit
        if let Some(pos) = path.iter().position(|&x| x == t) {
            path.truncate(pos + 1);
        }
        Some(path)
    }

    /// Checks a route only uses spanner edges (except the permitted
    /// direct first hop between adjacent endpoints).
    pub fn route_uses_spanner(&self, path: &[NodeId]) -> bool {
        if path.len() == 2 {
            return self.graph_edges.has_edge(path[0], path[1]);
        }
        path.windows(2).all(|w| self.spanner.has_edge(w[0], w[1]))
    }

    /// Measures the stretch of routing between `s` and `t`: routed hops
    /// divided by shortest-path hops in `G`. `None` if unroutable.
    pub fn stretch(&self, g: &Graph, s: NodeId, t: NodeId) -> Option<f64> {
        let routed = self.route(s, t)?.len() as f64 - 1.0;
        let shortest = traversal::hop_distance(g, s, t)? as f64;
        if shortest == 0.0 {
            return Some(1.0);
        }
        Some(routed / shortest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_core::algo2::AlgorithmTwo;
    use wcds_core::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    fn router_for(g: &Graph) -> BackboneRouter {
        let result = AlgorithmTwo::new().construct(g);
        BackboneRouter::build(g, &result.wcds)
    }

    #[test]
    fn clusterheads_are_adjacent_dominators() {
        let g = generators::connected_gnp(40, 0.1, 1);
        let result = AlgorithmTwo::new().construct(&g);
        let router = BackboneRouter::build(&g, &result.wcds);
        let heads = result.wcds.mis_dominators();
        for u in g.nodes() {
            let h = router.clusterhead(u);
            assert!(heads.contains(&h));
            assert!(h == u || g.has_edge(u, h));
        }
    }

    #[test]
    fn routes_exist_and_are_walks_in_g() {
        let g = generators::connected_gnp(40, 0.1, 5);
        let router = router_for(&g);
        for s in 0..10 {
            for t in 30..40 {
                let path = router.route(s, t).expect("connected network routes");
                assert_eq!(*path.first().unwrap(), s);
                assert_eq!(*path.last().unwrap(), t);
                for w in path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "non-edge in route {path:?}");
                }
            }
        }
    }

    #[test]
    fn routes_use_spanner_edges() {
        let g = generators::connected_gnp(50, 0.08, 9);
        let router = router_for(&g);
        for s in [0, 7, 13] {
            for t in [44, 31, 22] {
                let path = router.route(s, t).unwrap();
                assert!(router.route_uses_spanner(&path), "route {path:?} leaves the spanner");
            }
        }
    }

    #[test]
    fn self_and_neighbor_routes_are_trivial() {
        let g = generators::path(5);
        let router = router_for(&g);
        assert_eq!(router.route(2, 2), Some(vec![2]));
        assert_eq!(router.route(1, 2), Some(vec![1, 2]));
    }

    #[test]
    fn stretch_is_bounded_on_udgs() {
        for seed in 0..4 {
            let udg = UnitDiskGraph::build(deploy::uniform(120, 6.0, 6.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let router = router_for(udg.graph());
            let mut worst: f64 = 1.0;
            for s in (0..120).step_by(17) {
                for t in (0..120).step_by(13) {
                    if s == t || udg.graph().has_edge(s, t) {
                        continue;
                    }
                    let st = router.stretch(udg.graph(), s, t).expect("routable");
                    worst = worst.max(st);
                }
            }
            // clusterhead routing pays ≤ 3 spanner hops per graph hop
            // plus the two end legs: hops ≤ 3h + 5, so stretch ≤ 5.5 at
            // h = 2 and below 4 for longer routes
            assert!(worst <= 5.5, "seed {seed}: worst stretch {worst}");
        }
    }

    #[test]
    fn table_sizes_scale_with_dominator_count() {
        let g = generators::connected_gnp(60, 0.07, 2);
        let result = AlgorithmTwo::new().construct(&g);
        let router = BackboneRouter::build(&g, &result.wcds);
        let heads = result.wcds.mis_dominators();
        for &h in heads {
            let size = router.table_size(h).unwrap();
            assert!(size < heads.len());
        }
        assert!(router.table_size(heads.len() + 1000).is_none() || heads.contains(&(heads.len() + 1000)));
        assert!(router.total_state() > 0 || heads.len() <= 1);
    }

    #[test]
    fn routes_visit_the_destination_exactly_once() {
        let g = generators::connected_gnp(60, 0.08, 21);
        let router = router_for(&g);
        for s in 0..12 {
            for t in 40..60 {
                let path = router.route(s, t).unwrap();
                assert_eq!(path.iter().filter(|&&x| x == t).count(), 1, "path {path:?}");
                assert_eq!(*path.last().unwrap(), t);
            }
        }
    }

    #[test]
    fn routing_on_star_goes_through_center() {
        let g = generators::star(6);
        let router = router_for(&g);
        let path = router.route(1, 4).unwrap();
        assert_eq!(path, vec![1, 0, 4]);
    }
}
