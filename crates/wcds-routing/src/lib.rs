//! Backbone routing and broadcast over WCDS-induced sparse spanners.
//!
//! §1 and §4.2 of the paper motivate the WCDS as a *virtual backbone*:
//! "the number of nodes responsible for routing and broadcasting can be
//! reduced to the number of nodes in the backbone". This crate builds
//! that application layer:
//!
//! * [`router`] — clusterhead unicast routing: every node registers with
//!   an adjacent MIS dominator (its clusterhead); dominators keep
//!   routing tables over the dominator-adjacency graph (2-/3-hop
//!   dominator pairs with their gateway nodes, exactly the
//!   `2HopDomList`/`3HopDomList` state of §4.2); packets travel
//!   source → clusterhead → dominator chain → destination;
//! * [`broadcast`] — backbone broadcast: only dominators (plus the
//!   spanning gateways the weak backbone needs) retransmit, versus
//!   blind flooding where everyone does.

pub mod broadcast;
pub mod distributed;
pub mod router;

pub use broadcast::BroadcastPlan;
pub use distributed::RoutingStack;
pub use router::BackboneRouter;
