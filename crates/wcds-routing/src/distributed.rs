//! The fully distributed routing stack of §4.2.
//!
//! The paper's narrative: *"The MIS-dominators (clusterheads) maintain
//! the routing tables. If a non-MIS-dominator node needs to send a
//! packet to a non-adjacent node, it sends the packet along with the
//! destination's ID to its clusterhead. The clusterhead uses its
//! routing tables to identify the next clusterhead on the path to the
//! destination's clusterhead, and uses its 2HopDomList and 3HopDomList
//! to identify the path to the next clusterhead."*
//!
//! Three message-driven phases, each a real protocol on the simulator
//! (phases are sequenced by the harness, like Algorithm I's):
//!
//! 1. **Registration** — every non-MIS-dominator unicasts `REGISTER` to
//!    its clusterhead (the smallest adjacent MIS dominator, known
//!    locally from its `1HopDomList`). `O(n)` messages.
//! 2. **Link-state dissemination** — each clusterhead floods one `LSA`
//!    carrying its dominator-graph neighbors (from its own
//!    `2HopDomList`/`3HopDomList`) and its member list; every node
//!    forwards each distinct origin once. `O(n·|S|)` messages — the
//!    table-building cost the paper leaves implicit.
//! 3. **Forwarding** — packets travel source → clusterhead → dominator
//!    chain (gateways source-routed from the sender clusterhead's own
//!    lists) → destination. Each clusterhead computes next-dominator
//!    hops by Dijkstra over its collected LSA database, weighting
//!    2-hop links 2 and 3-hop links 3.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wcds_core::algo2::distributed::{DistributedRun, NodeColor, NodeInfo};
use wcds_graph::{Graph, NodeId};
use wcds_sim::{Context, ProcId, Protocol, Schedule, SimReport, Simulator};

/// A node's role in the routing stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// MIS dominator: clusterhead with routing tables.
    Clusterhead,
    /// Everything else (gray nodes and additional dominators): hosts
    /// and gateways.
    Host,
}

/// One dominator-graph link as advertised in an LSA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomLink {
    /// The neighboring clusterhead.
    pub to: ProcId,
    /// Spanner hop count of the link (2 or 3).
    pub hops: u8,
}

/// A link-state advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lsa {
    /// The advertising clusterhead.
    pub origin: ProcId,
    /// Its dominator-graph links.
    pub links: Vec<DomLink>,
    /// The hosts registered to it (its cluster members).
    pub members: Vec<ProcId>,
}

/// Messages of the routing stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingMsg {
    /// Host → clusterhead membership registration.
    Register,
    /// Flooded link-state advertisement.
    LinkState(Lsa),
    /// A routed data packet.
    Packet {
        /// Original source (for bookkeeping).
        src: ProcId,
        /// Final destination.
        dst: ProcId,
        /// Remaining source-routed relay hops to the next clusterhead.
        relay: VecDeque<ProcId>,
        /// Hops travelled so far.
        hops: u32,
    },
}

/// Per-node state of the combined routing protocol.
///
/// The same state machine runs all three phases; the harness triggers
/// them via [`RoutingStack`].
#[derive(Debug)]
pub struct RoutingNode {
    role: Role,
    /// This node's clusterhead (itself for clusterheads).
    clusterhead: ProcId,
    /// The dominator lists inherited from the Algorithm II run.
    info: NodeInfo,
    /// Clusterheads only: registered members.
    members: BTreeSet<ProcId>,
    /// Collected LSA database (origin → LSA), at clusterheads.
    lsa_db: BTreeMap<ProcId, Lsa>,
    /// Flood dedup: origins already forwarded.
    forwarded: BTreeSet<ProcId>,
    /// Packets this node originated (dst list), injected at phase 3.
    outbox: Vec<ProcId>,
    /// Deliveries observed at this node: `(src, hops)`.
    delivered: Vec<(ProcId, u32)>,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Register,
    Flood,
    Forward,
}

impl RoutingNode {
    fn new(color: NodeColor, info: NodeInfo, id: ProcId) -> Self {
        let role = if color == NodeColor::MisDominator { Role::Clusterhead } else { Role::Host };
        let clusterhead = if role == Role::Clusterhead {
            id
        } else {
            info.one_hop_doms.iter().copied().min().expect("every node is dominated")
        };
        Self {
            role,
            clusterhead,
            info,
            members: BTreeSet::new(),
            lsa_db: BTreeMap::new(),
            forwarded: BTreeSet::new(),
            outbox: Vec::new(),
            delivered: Vec::new(),
            phase: Phase::Register,
        }
    }

    /// Deliveries observed at this node.
    pub fn delivered(&self) -> &[(ProcId, u32)] {
        &self.delivered
    }

    /// The clusterhead this node registered with.
    pub fn clusterhead(&self) -> ProcId {
        self.clusterhead
    }

    /// Number of LSAs in this node's database.
    pub fn lsa_count(&self) -> usize {
        self.lsa_db.len()
    }

    /// This clusterhead's dominator-graph links, deduplicated with
    /// 2-hop paths preferred over 3-hop ones.
    fn own_links(&self) -> Vec<DomLink> {
        let mut links: BTreeMap<ProcId, u8> = BTreeMap::new();
        for &(d, _) in &self.info.two_hop_doms {
            links.insert(d, 2);
        }
        for &(d, _, _) in &self.info.three_hop_doms {
            links.entry(d).or_insert(3);
        }
        links.into_iter().map(|(to, hops)| DomLink { to, hops }).collect()
    }

    /// The gateway chain of this clusterhead's link to `next`
    /// (terminating at `next` itself).
    fn gateway_chain(&self, next: ProcId) -> VecDeque<ProcId> {
        if let Some(&(_, v)) = self.info.two_hop_doms.iter().find(|&&(d, _)| d == next) {
            return VecDeque::from([v, next]);
        }
        if let Some(&(_, v, x)) = self.info.three_hop_doms.iter().find(|&&(d, _, _)| d == next) {
            return VecDeque::from([v, x, next]);
        }
        unreachable!("next clusterhead {next} is not a dominator-graph neighbor")
    }

    /// Dijkstra over the LSA database: the next clusterhead on a
    /// cheapest path to `target_head`, or `None` if unknown.
    fn next_clusterhead(&self, me: ProcId, target_head: ProcId) -> Option<ProcId> {
        if target_head == me {
            return None;
        }
        let mut dist: BTreeMap<ProcId, (u32, Option<ProcId>)> = BTreeMap::new();
        dist.insert(me, (0, None));
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, ProcId)>> =
            [std::cmp::Reverse((0, me))].into();
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if dist.get(&u).is_some_and(|&(best, _)| d > best) {
                continue;
            }
            let links: Vec<DomLink> = if u == me {
                self.own_links()
            } else {
                self.lsa_db.get(&u).map(|l| l.links.clone()).unwrap_or_default()
            };
            for link in links {
                let nd = d + link.hops as u32;
                let first = if u == me { Some(link.to) } else { dist[&u].1 };
                if dist.get(&link.to).is_none_or(|&(best, _)| nd < best) {
                    dist.insert(link.to, (nd, first));
                    heap.push(std::cmp::Reverse((nd, link.to)));
                }
            }
        }
        dist.get(&target_head).and_then(|&(_, first)| first)
    }

    /// The clusterhead responsible for `node`, per the LSA database.
    fn head_of(&self, me: ProcId, node: ProcId) -> Option<ProcId> {
        if node == me || self.members.contains(&node) {
            return Some(me);
        }
        if self.lsa_db.contains_key(&node) {
            return Some(node); // destination is itself a clusterhead
        }
        self.lsa_db
            .values()
            .find(|lsa| lsa.members.binary_search(&node).is_ok())
            .map(|lsa| lsa.origin)
    }

    /// Clusterhead forwarding decision for a packet addressed to `dst`.
    fn forward_from_head(
        &mut self,
        dst: ProcId,
        src: ProcId,
        hops: u32,
        ctx: &mut Context<'_, RoutingMsg>,
    ) {
        debug_assert_eq!(self.role, Role::Clusterhead);
        let me = ctx.id();
        if ctx.is_neighbor(dst) {
            ctx.send(dst, RoutingMsg::Packet { src, dst, relay: VecDeque::new(), hops: hops + 1 });
            return;
        }
        let Some(target_head) = self.head_of(me, dst) else {
            return; // unknown destination: drop (counted by tests)
        };
        debug_assert_ne!(target_head, me, "own member would have been adjacent");
        let Some(next) = self.next_clusterhead(me, target_head) else {
            return; // no route in the LSA graph: drop
        };
        let mut relay = self.gateway_chain(next);
        let first = relay.pop_front().expect("chains have at least the next head");
        ctx.send(first, RoutingMsg::Packet { src, dst, relay, hops: hops + 1 });
    }
}

impl Protocol for RoutingNode {
    type Message = RoutingMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, RoutingMsg>) {
        match self.phase {
            Phase::Register => {
                if self.role == Role::Host {
                    ctx.send(self.clusterhead, RoutingMsg::Register);
                }
            }
            Phase::Flood => {
                if self.role == Role::Clusterhead {
                    let lsa = Lsa {
                        origin: ctx.id(),
                        links: self.own_links(),
                        members: self.members.iter().copied().collect(),
                    };
                    self.lsa_db.insert(lsa.origin, lsa.clone());
                    self.forwarded.insert(lsa.origin);
                    ctx.broadcast(RoutingMsg::LinkState(lsa));
                }
            }
            Phase::Forward => {
                let me = ctx.id();
                for dst in std::mem::take(&mut self.outbox) {
                    if dst == me {
                        self.delivered.push((me, 0));
                    } else if ctx.is_neighbor(dst) {
                        // adjacent pairs route in a single hop (paper)
                        ctx.send(
                            dst,
                            RoutingMsg::Packet { src: me, dst, relay: VecDeque::new(), hops: 1 },
                        );
                    } else if self.role == Role::Clusterhead {
                        self.forward_from_head(dst, me, 0, ctx);
                    } else {
                        ctx.send(
                            self.clusterhead,
                            RoutingMsg::Packet { src: me, dst, relay: VecDeque::new(), hops: 1 },
                        );
                    }
                }
            }
        }
    }

    fn on_message(&mut self, from: ProcId, msg: RoutingMsg, ctx: &mut Context<'_, RoutingMsg>) {
        match msg {
            RoutingMsg::Register => {
                debug_assert_eq!(self.role, Role::Clusterhead, "hosts never receive REGISTER");
                self.members.insert(from);
            }
            RoutingMsg::LinkState(lsa) => {
                if self.role == Role::Clusterhead {
                    self.lsa_db.entry(lsa.origin).or_insert_with(|| lsa.clone());
                }
                if self.forwarded.insert(lsa.origin) {
                    ctx.broadcast(RoutingMsg::LinkState(lsa));
                }
            }
            RoutingMsg::Packet { src, dst, mut relay, hops } => {
                let me = ctx.id();
                if dst == me {
                    self.delivered.push((src, hops));
                    return;
                }
                if let Some(next) = relay.pop_front() {
                    ctx.send(next, RoutingMsg::Packet { src, dst, relay, hops: hops + 1 });
                    return;
                }
                if ctx.is_neighbor(dst) {
                    ctx.send(
                        dst,
                        RoutingMsg::Packet { src, dst, relay: VecDeque::new(), hops: hops + 1 },
                    );
                    return;
                }
                debug_assert_eq!(
                    self.role,
                    Role::Clusterhead,
                    "a relay chain must end at a clusterhead"
                );
                self.forward_from_head(dst, src, hops, ctx);
            }
        }
    }

    fn message_kind(msg: &RoutingMsg) -> &'static str {
        match msg {
            RoutingMsg::Register => "REGISTER",
            RoutingMsg::LinkState(_) => "LSA",
            RoutingMsg::Packet { .. } => "PACKET",
        }
    }

    fn message_payload(msg: &RoutingMsg) -> u64 {
        match msg {
            RoutingMsg::Register => 1,
            RoutingMsg::LinkState(lsa) => 1 + lsa.links.len() as u64 + lsa.members.len() as u64,
            RoutingMsg::Packet { relay, .. } => 2 + relay.len() as u64,
        }
    }
}

/// A delivered-traffic record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Hops travelled.
    pub hops: u32,
}

/// The harness driving the three routing phases over a completed
/// Algorithm II distributed run.
#[derive(Debug)]
pub struct RoutingStack {
    sim: Simulator<RoutingNode>,
    /// Phase 1 + 2 accounting (table construction cost).
    pub setup_reports: Vec<SimReport>,
}

impl RoutingStack {
    /// Builds the stack from the per-node state of a distributed
    /// Algorithm II run, then runs registration and LSA flooding.
    ///
    /// # Panics
    ///
    /// Panics if the run left undominated nodes (impossible for a valid
    /// run) or a phase fails to quiesce.
    pub fn build(g: &Graph, run: &DistributedRun, schedule: impl Fn() -> Schedule) -> Self {
        let mut sim = Simulator::new(g, |u| {
            RoutingNode::new(run.colors[u], run.node_infos[u].clone(), u)
        });
        let r1 = sim.run(schedule()).expect("registration quiesces");
        for u in g.nodes() {
            // advance everyone to the flood phase
            sim_mut(&mut sim, u).phase = Phase::Flood;
        }
        let r2 = sim.run(schedule()).expect("flood quiesces");
        for u in g.nodes() {
            sim_mut(&mut sim, u).phase = Phase::Forward;
        }
        Self { sim, setup_reports: vec![r1, r2] }
    }

    /// Sends one packet per `(src, dst)` pair and runs to quiescence;
    /// returns the deliveries observed and the forwarding report.
    ///
    /// # Panics
    ///
    /// Panics if the forwarding phase fails to quiesce.
    pub fn send_packets(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        schedule: Schedule,
    ) -> (Vec<Delivery>, SimReport) {
        for &(src, dst) in pairs {
            sim_mut(&mut self.sim, src).outbox.push(dst);
        }
        let report = self.sim.run(schedule).expect("forwarding quiesces");
        let mut out = Vec::new();
        for dst in 0..self.sim.node_count() {
            for &(src, hops) in self.sim.node(dst).delivered() {
                out.push(Delivery { src, dst, hops });
            }
        }
        // deliveries accumulate across send_packets calls; clear them
        for u in 0..self.sim.node_count() {
            sim_mut(&mut self.sim, u).delivered.clear();
        }
        (out, report)
    }

    /// The LSA database size at each clusterhead (should equal the
    /// number of clusterheads everywhere).
    pub fn lsa_counts(&self) -> Vec<(NodeId, usize)> {
        (0..self.sim.node_count())
            .filter(|&u| self.sim.node(u).role == Role::Clusterhead)
            .map(|u| (u, self.sim.node(u).lsa_count()))
            .collect()
    }
}

/// Mutable access helper (the simulator only exposes shared access;
/// the routing stack needs to flip phases and inject traffic between
/// runs).
fn sim_mut(sim: &mut Simulator<RoutingNode>, u: ProcId) -> &mut RoutingNode {
    // SAFETY-free: plain mutable indexing through a small accessor the
    // simulator provides for harness use.
    sim.node_mut(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_core::algo2;
    use wcds_geom::deploy;
    use wcds_graph::{generators, traversal, UnitDiskGraph};

    fn stack_for(g: &Graph) -> (RoutingStack, DistributedRun) {
        let run = algo2::distributed::run_synchronous(g);
        let stack = RoutingStack::build(g, &run, Schedule::synchronous);
        (stack, run)
    }

    #[test]
    fn every_clusterhead_learns_every_lsa() {
        let g = generators::connected_gnp(50, 0.09, 3);
        let (stack, run) = stack_for(&g);
        let heads = run.result.wcds.mis_dominators().len();
        for (u, count) in stack.lsa_counts() {
            assert_eq!(count, heads, "clusterhead {u} has an incomplete LSA database");
        }
    }

    #[test]
    fn packets_reach_their_destinations() {
        let g = generators::connected_gnp(60, 0.08, 7);
        let (mut stack, _) = stack_for(&g);
        let pairs: Vec<(NodeId, NodeId)> =
            vec![(0, 59), (10, 45), (33, 2), (58, 20), (5, 5)];
        let (deliveries, _) = stack.send_packets(&pairs, Schedule::synchronous());
        for &(src, dst) in &pairs {
            if src == dst {
                continue; // self-delivery recorded locally at hops 0
            }
            assert!(
                deliveries.iter().any(|d| d.src == src && d.dst == dst),
                "packet {src} → {dst} lost; got {deliveries:?}"
            );
        }
    }

    #[test]
    fn hop_counts_respect_the_clusterhead_bound() {
        let udg = UnitDiskGraph::build(deploy::uniform(120, 6.0, 6.0, 4), 1.0);
        if !traversal::is_connected(udg.graph()) {
            return;
        }
        let g = udg.graph();
        let (mut stack, _) = stack_for(g);
        let pairs: Vec<(NodeId, NodeId)> =
            (0..20).map(|i| (i * 3 % 120, (i * 7 + 60) % 120)).filter(|(a, b)| a != b).collect();
        let (deliveries, _) = stack.send_packets(&pairs, Schedule::synchronous());
        for d in &deliveries {
            let h = traversal::hop_distance(g, d.src, d.dst).expect("connected") as u32;
            assert!(d.hops <= 3 * h + 5, "{d:?} exceeds 3·{h}+5");
            assert!(d.hops >= h, "{d:?} beat the shortest path?!");
        }
        assert_eq!(deliveries.len(), pairs.len());
    }

    #[test]
    fn setup_message_complexity_is_bounded() {
        let udg = UnitDiskGraph::build(deploy::uniform(150, 7.0, 7.0, 9), 1.0);
        if !traversal::is_connected(udg.graph()) {
            return;
        }
        let g = udg.graph();
        let (stack, run) = stack_for(g);
        let n = g.node_count() as u64;
        let heads = run.result.wcds.mis_dominators().len() as u64;
        let register = stack.setup_reports[0].messages.total();
        let lsa = stack.setup_reports[1].messages.total();
        assert_eq!(register, n - heads, "one REGISTER per host");
        assert!(lsa <= n * heads, "LSA flood exceeds n·|S|: {lsa} > {n}·{heads}");
    }

    #[test]
    fn async_forwarding_still_delivers() {
        let g = generators::connected_gnp(40, 0.12, 11);
        let run = algo2::distributed::run_synchronous(&g);
        let mut stack = RoutingStack::build(&g, &run, Schedule::synchronous);
        let pairs = vec![(0, 39), (17, 4)];
        let (deliveries, _) = stack.send_packets(&pairs, Schedule::asynchronous(5));
        assert_eq!(deliveries.len(), 2, "async schedule lost packets: {deliveries:?}");
    }

    #[test]
    fn repeated_traffic_batches_work() {
        let g = generators::connected_gnp(30, 0.15, 2);
        let (mut stack, _) = stack_for(&g);
        let (d1, _) = stack.send_packets(&[(0, 29)], Schedule::synchronous());
        assert_eq!(d1.len(), 1);
        let (d2, _) = stack.send_packets(&[(29, 0), (1, 28)], Schedule::synchronous());
        assert_eq!(d2.len(), 2, "second batch: {d2:?}");
    }

    #[test]
    fn star_topology_routes_through_hub() {
        let g = generators::star(8);
        let (mut stack, _) = stack_for(&g);
        let (deliveries, report) = stack.send_packets(&[(1, 5)], Schedule::synchronous());
        assert_eq!(deliveries, vec![Delivery { src: 1, dst: 5, hops: 2 }]);
        assert_eq!(report.messages.of_kind("PACKET"), 2);
    }
}
