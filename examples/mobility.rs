//! WCDS maintenance under node mobility (§4.2's extension).
//!
//! Runs a random-jitter motion trace, repairing the backbone after
//! every step, and reports how local the repairs stay.
//!
//! ```text
//! cargo run --example mobility
//! ```

use wcds::core::maintenance::MaintainedWcds;
use wcds::geom::{deploy, BoundingBox, Point};
use wcds::graph::{domination, traversal, NodeId};

fn main() {
    let side = 7.0;
    let region = BoundingBox::with_size(side, side);
    let points = deploy::uniform(200, side, side, 99);
    let mut net = MaintainedWcds::new(points, 1.0);
    println!("initial backbone: {}", net.wcds());

    println!(
        "\n{:>4}  {:>9}  {:>9}  {:>8}  {:>13}  valid",
        "step", "promoted", "demoted", "|U|", "repair radius"
    );
    for step in 0..20u64 {
        let moved = deploy::perturb(net.points(), region, 0.12, 500 + step);
        let moves: Vec<(NodeId, Point)> = moved.iter().copied().enumerate().collect();
        let report = net.apply_motion(&moves);
        let w = net.wcds();
        let valid = domination::is_dominating_set(net.graph(), w.nodes())
            && (!traversal::is_connected(net.graph()) || w.is_valid(net.graph()));
        println!(
            "{step:>4}  {:>9}  {:>9}  {:>8}  {:>13}  {valid}",
            report.promoted.len(),
            report.demoted.len(),
            w.len(),
            report
                .locality_radius
                .map_or_else(|| "—".to_string(), |r| r.to_string()),
        );
    }

    // one node walks across the whole field: repairs follow it locally
    println!("\nsingle walker crossing the field:");
    for step in 0..5 {
        let target = Point::new((step as f64 + 1.0) * side / 6.0, side / 2.0);
        let report = net.apply_motion(&[(0, target)]);
        println!(
            "  step {step}: Δ = {}+{}, repair radius {:?} (paper's claim: within 3 hops)",
            report.promoted.len(),
            report.demoted.len(),
            report.locality_radius
        );
    }
}
