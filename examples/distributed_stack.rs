//! The complete distributed stack end-to-end: construct the backbone
//! with Algorithm II's protocol, build routing tables with the
//! registration + link-state protocols, then route real packets — all
//! of it running as message-passing protocols on the simulator, with
//! every message accounted for.
//!
//! ```text
//! cargo run --example distributed_stack
//! ```

use wcds::core::algo2;
use wcds::geom::deploy;
use wcds::graph::{traversal, UnitDiskGraph};
use wcds::routing::distributed::RoutingStack;
use wcds::sim::Schedule;

fn main() {
    // a connected 150-node network
    let mut seed = 0;
    let udg = loop {
        let udg = UnitDiskGraph::build(deploy::uniform(150, 6.5, 6.5, seed), 1.0);
        if traversal::is_connected(udg.graph()) {
            break udg;
        }
        seed += 1;
    };
    let g = udg.graph();

    // 1. backbone construction (distributed Algorithm II)
    let run = algo2::distributed::run_synchronous(g);
    println!("backbone construction: {}", run.report);
    println!("  {}", run.result.wcds);

    // 2. routing-table construction (registration + LSA flooding)
    let mut stack = RoutingStack::build(g, &run, Schedule::synchronous);
    println!("\ntable construction:");
    println!("  registration: {}", stack.setup_reports[0]);
    println!("  LSA flooding: {}", stack.setup_reports[1]);
    let (head, lsas) = stack.lsa_counts()[0];
    println!("  clusterhead {head} holds {lsas} LSAs (one per clusterhead)");

    // 3. traffic
    let pairs = [(0, 149), (25, 100), (77, 3), (140, 60)];
    let (deliveries, report) = stack.send_packets(&pairs, Schedule::synchronous());
    println!("\nforwarded {} packets: {}", pairs.len(), report);
    println!("\n{:>5}  {:>5}  {:>6}  {:>9}  stretch", "src", "dst", "hops", "shortest");
    for d in &deliveries {
        let shortest = traversal::hop_distance(g, d.src, d.dst).expect("connected");
        println!(
            "{:>5}  {:>5}  {:>6}  {:>9}  {:>7.2}",
            d.src,
            d.dst,
            d.hops,
            shortest,
            d.hops as f64 / shortest as f64
        );
    }

    let total_setup = run.report.messages.total()
        + stack.setup_reports.iter().map(|r| r.messages.total()).sum::<u64>();
    println!("\ntotal setup cost: {total_setup} messages for {} nodes", g.node_count());
    println!("(backbone + tables; after this, each packet costs only its path length)");
}
