//! Watching the distributed protocols run, message by message.
//!
//! Runs Algorithm II's fully-localized protocol on a small network with
//! event tracing enabled, prints the message timeline, and then shows
//! the per-phase accounting of Algorithm I's three-phase stack.
//!
//! ```text
//! cargo run --example distributed_trace
//! ```

use wcds::core::{algo1, algo2};
use wcds::geom::deploy;
use wcds::graph::{traversal, UnitDiskGraph};
use wcds::sim::Schedule;

fn main() {
    let udg = UnitDiskGraph::build(deploy::uniform(18, 2.6, 2.6, 5), 1.0);
    let g = udg.graph();
    if !traversal::is_connected(g) {
        eprintln!("deployment not connected — try another seed");
        return;
    }

    // Algorithm II with tracing: every send and delivery, timestamped.
    let run = algo2::distributed::run(g, Schedule::synchronous().with_trace(60));
    println!("Algorithm II on {} nodes — first traced events:", g.node_count());
    print!("{}", run.report.trace);
    println!("...\nresult: {}  ({} rounds, {})", run.result.wcds, run.report.rounds, run.report.messages);

    // the same construction under an adversarial asynchronous schedule
    let async_run = algo2::distributed::run_asynchronous(g, 9);
    println!(
        "\nasynchronous run (seed 9): same MIS = {}, still valid = {}",
        async_run.result.wcds.mis_dominators() == run.result.wcds.mis_dominators(),
        async_run.result.wcds.is_valid(g)
    );

    // Algorithm I's three phases, with their message budgets
    let run1 = algo1::distributed::run_synchronous(g);
    println!("\nAlgorithm I phases (leader = node {}):", run1.leader);
    println!("  election : {}", run1.election_report);
    println!("  levels   : {}", run1.level_report);
    println!("  marking  : {}", run1.marking_report);
    println!("  total    : {} messages, {} rounds", run1.total_messages(), run1.total_time());
    println!("  result   : {}", run1.result.wcds);
}
