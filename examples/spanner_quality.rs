//! Auditing spanner quality: sparseness (Theorems 8/10) and dilation
//! (Theorem 11) on a concrete deployment — including the exact
//! worst-case witness pairs.
//!
//! ```text
//! cargo run --example spanner_quality
//! ```

use wcds::core::algo1::AlgorithmOne;
use wcds::core::algo2::AlgorithmTwo;
use wcds::core::dilation::DilationReport;
use wcds::core::spanner::SpannerStats;
use wcds::core::WcdsConstruction;
use wcds::geom::deploy;
use wcds::graph::{traversal, UnitDiskGraph};

fn main() {
    let mut seed = 15;
    let udg = loop {
        let udg = UnitDiskGraph::build(deploy::uniform(220, 7.0, 7.0, seed), 1.0);
        if traversal::is_connected(udg.graph()) {
            break udg;
        }
        seed += 1;
    };
    let g = udg.graph();
    println!("G: {} nodes, {} edges", g.node_count(), g.edge_count());

    for (name, result) in [
        ("Algorithm I ", AlgorithmOne::new().construct(g)),
        ("Algorithm II", AlgorithmTwo::new().construct(g)),
    ] {
        let stats = SpannerStats::compute(g, &result.wcds);
        println!("\n{name}: {}", result.wcds);
        println!("  {stats}");
        println!(
            "  edge classes: gray–MIS {}, MIS–bridge {}, gray–bridge {}, bridge–bridge {}",
            stats.gray_mis_edges,
            stats.mis_additional_edges,
            stats.gray_additional_edges,
            stats.additional_additional_edges
        );
    }

    // dilation guarantees hold for Algorithm II's spanner
    let r2 = AlgorithmTwo::new().construct(g);
    let report = DilationReport::measure(g, &r2.spanner, udg.points());
    println!("\ndilation of the Algorithm II spanner:");
    if let Some(w) = report.topological {
        println!(
            "  worst hop pair   ({}, {}): {} hops in G, {} in G'  (bound 3·{}+2 = {})",
            w.u,
            w.v,
            w.in_graph,
            w.in_spanner,
            w.in_graph,
            3.0 * w.in_graph + 2.0
        );
    }
    if let Some(w) = report.geometric {
        println!(
            "  worst length pair ({}, {}): {:.2} in G, {:.2} in G'  (bound 6·{:.2}+5 = {:.2})",
            w.u,
            w.v,
            w.in_graph,
            w.in_spanner,
            w.in_graph,
            6.0 * w.in_graph + 5.0
        );
    }
    println!(
        "  Theorem 11 bounds hold: topological = {}, geometric = {}",
        report.satisfies_topological_bound(),
        report.satisfies_geometric_bound()
    );

    // or get everything at once from the audit aggregator
    let audit = wcds::core::audit::BackboneAudit::measure(g, udg.points(), &r2.wcds);
    println!("\n{audit}");
    println!("all proven bounds hold: {}", audit.all_bounds_hold());
}
