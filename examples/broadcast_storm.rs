//! Taming the broadcast storm with a WCDS backbone (§1 of the paper).
//!
//! Compares blind flooding (every node retransmits once) against
//! backbone forwarding (only dominators and their spanning gateways
//! retransmit) across increasing network density.
//!
//! ```text
//! cargo run --example broadcast_storm
//! ```

use wcds::core::algo2::AlgorithmTwo;
use wcds::core::WcdsConstruction;
use wcds::geom::deploy;
use wcds::graph::{traversal, UnitDiskGraph};
use wcds::routing::BroadcastPlan;

fn main() {
    println!(
        "{:>6}  {:>8}  {:>9}  {:>12}  {:>9}  coverage",
        "n", "avg deg", "flood tx", "backbone tx", "savings"
    );
    for n in [100usize, 200, 400, 800] {
        // fixed 7×7 field: density (and flooding waste) rises with n
        let mut seed = 0;
        let udg = loop {
            let udg = UnitDiskGraph::build(deploy::uniform(n, 7.0, 7.0, seed), 1.0);
            if traversal::is_connected(udg.graph()) {
                break udg;
            }
            seed += 1;
        };
        let g = udg.graph();
        let result = AlgorithmTwo::new().construct(g);

        let flood = BroadcastPlan::flooding(g).simulate(g, 0);
        let plan = BroadcastPlan::for_wcds(g, &result.wcds);
        let backbone = plan.simulate(g, 0);

        let savings = 100.0 * (1.0 - backbone.transmissions as f64 / flood.transmissions as f64);
        println!(
            "{n:>6}  {:>8.1}  {:>9}  {:>12}  {savings:>8.0}%  {}",
            g.avg_degree(),
            flood.transmissions,
            backbone.transmissions,
            if backbone.full_coverage { "full" } else { "PARTIAL!" }
        );
    }
    println!("\nthe backbone is area-bound (packing argument), so its cost flattens while");
    println!("flooding pays one transmission per node — exactly the paper's §1 motivation.");
}
