//! Clusterhead routing over the WCDS backbone (§4.2 of the paper).
//!
//! Builds the spanner, assigns every node to a clusterhead, routes a
//! few packets through the dominator hierarchy, and compares the paths
//! against the true shortest paths in `G`.
//!
//! ```text
//! cargo run --example backbone_routing
//! ```

use wcds::core::algo2::AlgorithmTwo;
use wcds::core::WcdsConstruction;
use wcds::geom::deploy;
use wcds::graph::{traversal, UnitDiskGraph};
use wcds::routing::BackboneRouter;

fn main() {
    let udg = UnitDiskGraph::build(deploy::uniform(250, 8.0, 8.0, 7), 1.0);
    let g = udg.graph();
    if !traversal::is_connected(g) {
        eprintln!("deployment not connected — try a denser field");
        return;
    }

    let result = AlgorithmTwo::new().construct(g);
    let router = BackboneRouter::build(g, &result.wcds);
    println!(
        "backbone: {} dominators over {} nodes; routing state only at dominators",
        result.wcds.len(),
        g.node_count()
    );

    let flows = [(0usize, 249usize), (10, 200), (33, 177), (5, 120)];
    println!("\n{:>5}  {:>5}  {:>9}  {:>9}  {:>8}  route", "src", "dst", "routed", "shortest", "stretch");
    for (s, t) in flows {
        let path = router.route(s, t).expect("connected network");
        let shortest = traversal::hop_distance(g, s, t).expect("connected") as usize;
        let stretch = (path.len() - 1) as f64 / shortest as f64;
        let rendered: Vec<String> = path
            .iter()
            .map(|&u| {
                if result.wcds.contains(u) {
                    format!("[{u}]") // dominators bracketed
                } else {
                    u.to_string()
                }
            })
            .collect();
        println!(
            "{s:>5}  {t:>5}  {:>9}  {shortest:>9}  {stretch:>8.2}  {}",
            path.len() - 1,
            rendered.join(" → ")
        );
    }

    println!("\nclusterhead of node 0 is {}", router.clusterhead(0));
    println!("(bracketed hops are dominators; interior hops are the recorded gateways)");
}
