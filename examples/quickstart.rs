//! Quickstart: deploy a network, build its unit-disk graph, run both of
//! the paper's WCDS constructions, and inspect what came out.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wcds::core::algo1::AlgorithmOne;
use wcds::core::algo2::AlgorithmTwo;
use wcds::core::spanner::SpannerStats;
use wcds::core::WcdsConstruction;
use wcds::geom::deploy;
use wcds::graph::{traversal, UnitDiskGraph};

fn main() {
    // 1. Deploy 300 nodes uniformly at random on a 9×9 field. Every
    //    node has a transmission range of one unit (the paper's model).
    let points = deploy::uniform(300, 9.0, 9.0, 2024);
    let udg = UnitDiskGraph::build(points, 1.0);
    let g = udg.graph();
    println!(
        "network: {} nodes, {} links, avg degree {:.1}, connected: {}",
        g.node_count(),
        g.edge_count(),
        g.avg_degree(),
        traversal::is_connected(g)
    );
    if !traversal::is_connected(g) {
        eprintln!("deployment not connected — try a denser field");
        return;
    }

    // 2. Algorithm I: leader-rooted, level-ranked MIS. Ratio ≤ 5·opt.
    let r1 = AlgorithmOne::new().construct(g);
    println!("\nAlgorithm I  : {}", r1.wcds);
    println!("  valid WCDS : {}", r1.wcds.is_valid(g));
    println!("  {}", SpannerStats::compute(g, &r1.wcds));

    // 3. Algorithm II: fully localized; MIS dominators plus bridges for
    //    3-hop MIS pairs. O(n) time and messages.
    let r2 = AlgorithmTwo::new().construct(g);
    println!("\nAlgorithm II : {}", r2.wcds);
    println!("  valid WCDS : {}", r2.wcds.is_valid(g));
    println!("  {}", SpannerStats::compute(g, &r2.wcds));

    // 4. The spanner is what you run your routing protocol on: same
    //    nodes, a linear number of edges, constant dilation.
    let kept = 100.0 * r2.spanner.edge_count() as f64 / g.edge_count() as f64;
    println!(
        "\nspanner keeps {}/{} edges ({kept:.0}%) — position-less, dilation ≤ 3 hops",
        r2.spanner.edge_count(),
        g.edge_count()
    );
}
