#!/usr/bin/env bash
# Service smoke test: start `wcds serve` on loopback, drive a scripted
# ingest → construct → route → mutate → route → stats → shutdown
# session through `wcds query`, and require a clean server exit. The
# session runs once per serving engine — the readiness event loop
# (default) and the worker-pool oracle — and the event-loop leg also
# exercises the pipelined client (`--repeat N --pipeline`).
#
# Usage: scripts/service_smoke.sh [--features rayon]
# Extra arguments are passed to every `cargo run` (so the smoke runs
# identically with and without the parallel engine).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=("$@")
PORT="${WCDS_SMOKE_PORT:-7741}"
GRAPH="$(mktemp -t wcds-smoke-XXXXXX.graph)"
trap 'rm -f "${GRAPH}"; kill "${SERVER_PID:-}" 2>/dev/null || true' EXIT

wcds() {
  cargo run --release -q "${CARGO_FLAGS[@]}" -p wcds-cli --bin wcds -- "$@"
}

# build first so the backgrounded serve doesn't race a compile
cargo build --release "${CARGO_FLAGS[@]}" -p wcds-cli

wcds generate --model uniform --n 60 --side 4 --seed 5 -o "${GRAPH}"

session() {
  local engine="$1" addr="$2"

  wcds serve --addr "${addr}" --workers 4 --engine "${engine}" &
  SERVER_PID=$!

  # wait for the listener
  for _ in $(seq 1 100); do
    if wcds query ping --addr "${addr}" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done

  wcds query ping      --addr "${addr}"
  wcds query create    --addr "${addr}" --name net -i "${GRAPH}"
  wcds query construct --addr "${addr}" --name net
  wcds query route     --addr "${addr}" --name net --from 0 --to 59
  wcds query mutate    --addr "${addr}" --name net --join 2.0,2.0
  wcds query route     --addr "${addr}" --name net --from 0 --to 60
  wcds query mutate    --addr "${addr}" --name net --move 5,1.5,1.5
  wcds query stats     --addr "${addr}" --name net

  if [ "${engine}" = "event-loop" ]; then
    # pipelined burst: 32 routes in one write, drained in order
    wcds query route --addr "${addr}" --name net --from 0 --to 59 \
      --repeat 32 --pipeline
  fi

  # failure-storm smoke: harden to a (2,2)-resilient backbone, park a
  # node out of radio range (a crash through the mutation API), and
  # require routing + stats to keep answering in degraded mode
  wcds query harden    --addr "${addr}" --name net --k 2 --m 2
  wcds query mutate    --addr "${addr}" --name net --move 7,900.0,900.0
  wcds query route     --addr "${addr}" --name net --from 0 --to 59
  wcds query stats     --addr "${addr}" --name net
  wcds query export    --addr "${addr}" --name net | head -n 1
  wcds query shutdown  --addr "${addr}"

  # graceful exit: serve must return 0 on its own (join() proved no
  # worker leaked; a hang here fails CI via the step timeout)
  wait "${SERVER_PID}"
  SERVER_PID=""
  echo "service smoke OK (${engine}, ${CARGO_FLAGS[*]:-serial})"
}

session event-loop  "127.0.0.1:${PORT}"
session worker-pool "127.0.0.1:$((PORT + 1))"
