//! # wcds — Weakly-Connected Dominating Sets and Sparse Spanners
//!
//! A faithful, from-scratch Rust reproduction of
//! *Alzoubi, Wan, Frieder — "Weakly-Connected Dominating Sets and Sparse
//! Spanners in Wireless Ad Hoc Networks" (ICDCS 2003)*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geom`] — plane geometry, deployment generators, spatial indexing;
//! * [`graph`] — unit-disk graphs and general graph machinery;
//! * [`sim`] — a deterministic distributed message-passing simulator;
//! * [`core`] — MIS ranking theory and the paper's two WCDS algorithms;
//! * [`baselines`] — greedy/exact comparison algorithms;
//! * [`routing`] — clusterhead routing and backbone broadcast over the
//!   induced spanner;
//! * [`service`] — backbone-as-a-service: a binary wire protocol, a
//!   multi-threaded TCP server over an epoch-cached topology store, and
//!   a blocking client.
//!
//! # Quickstart
//!
//! ```
//! use wcds::core::algo2::AlgorithmTwo;
//! use wcds::core::WcdsConstruction;
//! use wcds::geom::deploy;
//! use wcds::graph::UnitDiskGraph;
//!
//! // 1. Deploy 200 nodes uniformly in a 7x7 region and build the UDG.
//! let points = deploy::uniform(200, 7.0, 7.0, 42);
//! let udg = UnitDiskGraph::build(points, 1.0);
//!
//! // 2. Run the paper's fully-localized Algorithm II.
//! let result = AlgorithmTwo::new().construct(udg.graph());
//!
//! // 3. The output is a verified WCDS plus its weakly-induced spanner.
//! assert!(result.wcds.is_valid(udg.graph()));
//! assert!(result.spanner.edge_count() <= udg.graph().edge_count());
//! ```

pub use wcds_baselines as baselines;
pub use wcds_core as core;
pub use wcds_geom as geom;
pub use wcds_graph as graph;
pub use wcds_routing as routing;
pub use wcds_service as service;
pub use wcds_sim as sim;
pub use wcds_vis as vis;
