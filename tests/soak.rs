//! Large-scale soak tests — `#[ignore]`d by default; run with
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```
//!
//! These push the substrates well past the sizes the regular suite
//! uses, to catch quadratic blowups and stack issues before a user
//! does.

use wcds::core::algo2;
use wcds::core::spanner::SpannerStats;
use wcds::core::WcdsConstruction;
use wcds::geom::deploy;
use wcds::graph::{traversal, UnitDiskGraph};

fn big_udg(n: usize, avg_degree: f64, seed: u64) -> UnitDiskGraph {
    let side = (n as f64 * std::f64::consts::PI / avg_degree).sqrt();
    for attempt in 0..50 {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed + attempt), 1.0);
        if traversal::is_connected(udg.graph()) {
            return udg;
        }
    }
    panic!("no connected deployment at n = {n}");
}

#[test]
#[ignore = "soak: ~10s in release"]
fn distributed_algo2_at_10k_nodes() {
    let udg = big_udg(10_000, 12.0, 1);
    let run = algo2::distributed::run_synchronous(udg.graph());
    assert!(run.result.wcds.is_valid(udg.graph()));
    let per_node = run.report.messages.total() as f64 / 10_000.0;
    assert!(per_node < 12.0, "messages per node {per_node} at 10k");
    let stats = SpannerStats::compute(udg.graph(), &run.result.wcds);
    assert!(stats.satisfies_theorem10_bound());
}

#[test]
#[ignore = "soak: centralized constructions at 50k nodes"]
fn centralized_constructions_at_50k_nodes() {
    use wcds::core::algo1::AlgorithmOne;
    use wcds::core::algo2::AlgorithmTwo;
    let udg = big_udg(50_000, 10.0, 2);
    let r1 = AlgorithmOne::new().construct(udg.graph());
    assert!(r1.wcds.is_valid(udg.graph()));
    let r2 = AlgorithmTwo::new().construct(udg.graph());
    assert!(r2.wcds.is_valid(udg.graph()));
    // spanner stays linear at scale
    let stats = SpannerStats::compute(udg.graph(), &r2.wcds);
    assert!(stats.edges_per_node() < 6.0);
}

#[test]
#[ignore = "soak: election on a 20k-node network"]
fn election_at_20k_nodes() {
    use wcds::core::election::elect;
    use wcds::sim::Schedule;
    let udg = big_udg(20_000, 10.0, 3);
    let out = elect(udg.graph(), Schedule::synchronous());
    assert_eq!(out.leader, 0);
    assert!(out.tree.spans(udg.graph()));
    // the O(n log n) claim with a generous constant
    let budget = 16.0 * 20_000.0 * (20_000.0f64).log2();
    assert!((out.report.messages.total() as f64) < budget);
}

#[test]
#[ignore = "soak: the entire evaluation harness end-to-end at quick scale"]
fn full_evaluation_harness_smoke() {
    let tables = wcds_bench::experiments::run_all(wcds_bench::util::Scale::Quick);
    assert!(tables.len() >= 20, "expected every experiment section, got {}", tables.len());
    for t in &tables {
        assert!(!t.rows.is_empty(), "empty table: {}", t.title);
        // every table renders
        assert!(!format!("{t}").is_empty());
    }
}

#[test]
#[ignore = "soak: mobility trace over 200 steps"]
fn long_mobility_trace_stays_valid() {
    use wcds::core::maintenance::distributed::DynamicBackbone;
    use wcds::geom::{BoundingBox, Point};
    let side = 10.0;
    let region = BoundingBox::with_size(side, side);
    let mut net = DynamicBackbone::new(deploy::uniform(800, side, side, 4), 1.0);
    for step in 0..200u64 {
        let moved = deploy::perturb(net.points(), region, 0.08, 9000 + step);
        let moves: Vec<(usize, Point)> = moved.iter().copied().enumerate().collect();
        net.apply_motion(&moves)
            .unwrap_or_else(|e| panic!("step {step}: repair did not quiesce: {e:?}"));
        assert!(net.mis_is_valid(), "step {step}");
    }
}
