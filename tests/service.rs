//! Facade-level integration test for the service layer: the whole
//! stack — deployment generator → UDG → service ingest over TCP →
//! cached backbone queries → mobility maintenance — driven through
//! `wcds::service` re-exports only.

use wcds::geom::deploy;
use wcds::graph::{io, traversal, UnitDiskGraph};
use wcds::routing::BackboneRouter;
use wcds::service::{Client, Mutation, RouteOutcome, Server, ServerConfig, Store};

#[test]
fn service_answers_match_the_library_pipeline() {
    // deployment the library way
    let udg = {
        let mut attempt = 0;
        loop {
            let udg = UnitDiskGraph::build(deploy::uniform(90, 4.5, 4.5, 100 + attempt), 1.0);
            if traversal::is_connected(udg.graph()) {
                break udg;
            }
            attempt += 1;
            assert!(attempt < 100, "no connected deployment");
        }
    };
    let payload = io::to_text(udg.graph(), Some(udg.points()));

    let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.create("net", &payload).unwrap();

    // the served backbone at epoch 0 equals the library construction:
    // the store runs the same deterministic Algorithm II rule
    let maintained =
        wcds::core::maintenance::MaintainedWcds::new(udg.points().to_vec(), 1.0);
    let (mis, bridges, _, epoch) = client.construct("net").unwrap();
    assert_eq!(epoch, 0);
    assert_eq!(mis, maintained.wcds().mis_dominators().len() as u64);
    assert_eq!(bridges, maintained.wcds().additional_dominators().len() as u64);

    let router = BackboneRouter::build(udg.graph(), &maintained.wcds());
    for (s, t) in [(0, 89), (5, 41), (33, 7)] {
        assert_eq!(
            client.route("net", s, t).unwrap(),
            RouteOutcome::Path(router.route(s, t).unwrap())
        );
    }

    // a mutation round-trips through §4.2 maintenance
    let (epoch, _, _) = client.mutate("net", Mutation::Leave { node: 0 }).unwrap();
    assert_eq!(epoch, 1);
    let stats = client.stats("net").unwrap();
    assert_eq!(stats.nodes, 89);

    client.shutdown_server().unwrap();
    handle.join();
}
