//! Exhaustive verification on ALL connected graphs of up to 6 nodes
//! (plus a random sample of 7-node graphs): no seed luck, no sampling
//! bias — every theorem that holds on general graphs is checked on
//! every instance.
//!
//! General-graph facts verified exhaustively:
//! * both algorithms produce valid WCDSs (Theorems 5 and 10 never need
//!   geometry for *validity*, only for the size/dilation constants);
//! * Lemma 3: complementary subsets of any MIS are 2 or 3 hops apart;
//! * Theorem 4: level-ranked MIS subsets are exactly 2 hops apart;
//! * `γ(G) ≤ |MWCDS| ≤ |MCDS|` (the size hierarchy of §1);
//! * pruning preserves validity and minimality.

use wcds::baselines::exact;
use wcds::core::algo1::AlgorithmOne;
use wcds::core::algo2::AlgorithmTwo;
use wcds::core::postprocess::{is_minimal, prune, PruneOrder};
use wcds::core::{properties, WcdsConstruction};
use wcds::graph::{domination, traversal, Graph};

/// All `(u, v)` pairs of an `n`-clique, fixed order.
fn pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            out.push((u, v));
        }
    }
    out
}

/// The graph selected by an edge bitmask.
fn graph_from_mask(n: usize, pairs: &[(usize, usize)], mask: u32) -> Graph {
    Graph::from_edges(
        n,
        pairs.iter().enumerate().filter(|&(i, _)| mask >> i & 1 == 1).map(|(_, &e)| e),
    )
}

/// Visits every connected graph on `n` labelled nodes.
fn for_each_connected_graph<F: FnMut(&Graph)>(n: usize, mut f: F) {
    let ps = pairs(n);
    let total = 1u32 << ps.len();
    for mask in 0..total {
        let g = graph_from_mask(n, &ps, mask);
        if traversal::is_connected(&g) {
            f(&g);
        }
    }
}

#[test]
fn both_algorithms_valid_on_every_connected_graph_up_to_5_nodes() {
    let mut count = 0u64;
    for n in 2..=5 {
        for_each_connected_graph(n, |g| {
            count += 1;
            let r1 = AlgorithmOne::new().construct(g);
            assert!(r1.wcds.is_valid(g), "algo1 failed on {g:?} edges {:?}", g.edges());
            let r2 = AlgorithmTwo::new().construct(g);
            assert!(r2.wcds.is_valid(g), "algo2 failed on {g:?} edges {:?}", g.edges());
        });
    }
    // 1 + 4 + 38 + 728 connected labelled graphs on 2..=5 nodes
    assert_eq!(count, 1 + 4 + 38 + 728, "enumeration drifted");
}

#[test]
fn lemma3_and_theorem4_on_every_connected_6_node_graph() {
    let mut checked = 0u64;
    for_each_connected_graph(6, |g| {
        let mis = wcds::core::mis::greedy_mis(g, wcds::core::mis::RankingMode::StaticId);
        if mis.len() >= 2 {
            let d = properties::max_complementary_subset_distance(g, &mis)
                .expect("connected graph");
            assert!((2..=3).contains(&d), "Lemma 3 failed on edges {:?}", g.edges());
        }
        let (_, level_mis) = AlgorithmOne::new().construct_detailed(g);
        if level_mis.len() >= 2 {
            let d = properties::max_complementary_subset_distance(g, &level_mis)
                .expect("connected graph");
            assert_eq!(d, 2, "Theorem 4 failed on edges {:?}", g.edges());
        }
        checked += 1;
    });
    assert_eq!(checked, 26_704, "expected all connected labelled 6-node graphs");
}

#[test]
fn size_hierarchy_on_every_connected_graph_up_to_5_nodes() {
    for n in 2..=5 {
        for_each_connected_graph(n, |g| {
            let ds = exact::minimum_dominating_set(g).len();
            let wcds = exact::minimum_wcds(g).len();
            let cds = exact::minimum_cds(g).len();
            assert!(ds <= wcds && wcds <= cds, "hierarchy failed on edges {:?}", g.edges());
            // both constructions respect the WCDS optimum
            assert!(AlgorithmOne::new().construct(g).wcds.len() >= wcds);
            assert!(AlgorithmTwo::new().construct(g).wcds.len() >= wcds);
        });
    }
}

#[test]
fn pruning_on_every_connected_graph_up_to_5_nodes() {
    for n in 2..=5 {
        for_each_connected_graph(n, |g| {
            let raw = AlgorithmTwo::new().construct(g).wcds;
            let pruned = prune(g, &raw, PruneOrder::DescendingId);
            assert!(pruned.is_valid(g), "pruned invalid on edges {:?}", g.edges());
            assert!(is_minimal(g, &pruned), "pruned not minimal on edges {:?}", g.edges());
        });
    }
}

#[test]
fn distributed_algo2_matches_centralized_on_all_4_node_graphs() {
    use wcds::core::algo2::distributed::run_synchronous;
    for_each_connected_graph(4, |g| {
        let dist = run_synchronous(g);
        let cent = AlgorithmTwo::new().construct(g);
        assert_eq!(
            dist.result.wcds.mis_dominators(),
            cent.wcds.mis_dominators(),
            "divergence on edges {:?}",
            g.edges()
        );
    });
}

#[test]
fn sampled_7_node_graphs_stay_valid() {
    // 2^21 masks is too many to enumerate in a test; stride-sample
    let ps = pairs(7);
    let total = 1u32 << ps.len();
    let mut checked = 0;
    let mut mask = 1u32;
    while mask < total {
        let g = graph_from_mask(7, &ps, mask);
        if traversal::is_connected(&g) {
            checked += 1;
            assert!(AlgorithmTwo::new().construct(&g).wcds.is_valid(&g));
            let mis = wcds::core::mis::greedy_mis(&g, wcds::core::mis::RankingMode::StaticId);
            assert!(domination::is_maximal_independent_set(&g, &mis));
        }
        mask = mask.wrapping_mul(2).wrapping_add(612_787) % total;
        if checked > 800 {
            break;
        }
    }
    assert!(checked >= 500, "sample too small: {checked}");
}
