//! Distributed-protocol conformance: the simulator-run protocols must
//! match their centralized references and survive adversarial
//! schedules and fault plans.

use wcds::core::election::{elect, ElectionNode};
use wcds::core::{algo1, algo2};
use wcds::geom::deploy;
use wcds::graph::{generators, traversal, UnitDiskGraph};
use wcds::sim::{FaultPlan, Schedule, Simulator};

#[test]
fn election_agrees_across_48_async_schedules() {
    let g = generators::connected_gnp(30, 0.12, 4);
    for seed in 0..48 {
        let out = elect(&g, Schedule::asynchronous(seed).with_max_delay(1 + seed % 7));
        assert_eq!(out.leader, 0, "seed {seed}");
        assert!(out.tree.spans(&g), "seed {seed}");
    }
}

#[test]
fn algo2_mis_is_schedule_independent() {
    // the lowest-ID MIS rule is confluent: any schedule yields the
    // lexicographically-first MIS
    let udg = UnitDiskGraph::build(deploy::uniform(60, 4.0, 4.0, 8), 1.0);
    if !traversal::is_connected(udg.graph()) {
        return;
    }
    let reference = algo2::distributed::run_synchronous(udg.graph());
    for seed in 0..20 {
        let run = algo2::distributed::run_asynchronous(udg.graph(), seed);
        assert_eq!(
            run.result.wcds.mis_dominators(),
            reference.result.wcds.mis_dominators(),
            "seed {seed}: MIS diverged under asynchrony"
        );
        assert!(run.result.wcds.is_valid(udg.graph()), "seed {seed}");
    }
}

#[test]
fn algo1_valid_under_varied_async_delays() {
    let g = generators::connected_gnp(40, 0.1, 6);
    for seed in 0..10 {
        let run = algo1::distributed::run_asynchronous(&g, seed);
        assert!(run.result.wcds.is_valid(&g), "seed {seed}");
        assert_eq!(run.leader, 0);
    }
}

#[test]
fn election_stalls_rather_than_misbehaves_under_a_crash() {
    // The paper's protocols assume a reliable network. A crashed
    // neighbor never acknowledges the winner's wave, so the election
    // must STALL (no leader declared anywhere) rather than elect
    // inconsistently — fail-safe, not fail-wrong.
    let g = generators::star(6); // center 0, leaves 1..=6
    let mut sim = Simulator::new(&g, ElectionNode::new);
    let schedule = Schedule::synchronous().with_fault_plan(FaultPlan::new(1).crash(3));
    sim.run(schedule).expect("quiesces (stalled, not livelocked)");
    for u in 0..7 {
        assert_eq!(sim.node(u).leader(), None, "node {u} must not declare a leader");
    }
}

#[test]
fn election_stalls_safely_when_messages_are_dropped() {
    // same fail-safe property under message loss: with every delivery
    // dropped nothing completes, and crucially nobody elects wrongly
    let g = generators::connected_gnp(12, 0.3, 2);
    let mut sim = Simulator::new(&g, ElectionNode::new);
    let schedule =
        Schedule::synchronous().with_fault_plan(FaultPlan::new(5).drop_probability(1.0));
    sim.run(schedule).expect("quiesces");
    for u in g.nodes() {
        // an isolated node (degree 0) would self-elect; connected_gnp
        // guarantees degree ≥ 1, so everyone waits forever
        assert_eq!(sim.node(u).leader(), None, "node {u} elected under total loss");
    }
}

#[test]
fn election_message_budget_matches_paper_assumption() {
    // the paper budgets O(n log n) messages for the election phase; on
    // random UDGs the echo-extinction election should stay within a
    // small multiple of n·log2(n)
    for &n in &[64usize, 256] {
        let side = (n as f64 * std::f64::consts::PI / 12.0).sqrt();
        let udg = (0..50)
            .find_map(|s| {
                let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, s), 1.0);
                traversal::is_connected(udg.graph()).then_some(udg)
            })
            .expect("connected deployment");
        let out = elect(udg.graph(), Schedule::synchronous());
        let budget = 12.0 * n as f64 * (n as f64).log2();
        assert!(
            (out.report.messages.total() as f64) < budget,
            "n = {n}: {} messages exceeds {budget}",
            out.report.messages.total()
        );
    }
}

#[test]
fn algo2_total_messages_scale_linearly() {
    let mut per_node = Vec::new();
    for &n in &[100usize, 400] {
        let side = (n as f64 * std::f64::consts::PI / 12.0).sqrt();
        let udg = (0..50)
            .find_map(|s| {
                let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, s), 1.0);
                traversal::is_connected(udg.graph()).then_some(udg)
            })
            .expect("connected deployment");
        let run = algo2::distributed::run_synchronous(udg.graph());
        per_node.push(run.report.messages.total() as f64 / n as f64);
    }
    // Theorem 12: O(n) messages ⇒ the per-node constant must not grow
    // appreciably when n quadruples
    assert!(
        per_node[1] < per_node[0] * 1.8 + 1.0,
        "per-node messages grew from {} to {}",
        per_node[0],
        per_node[1]
    );
}

#[test]
fn algo2_tolerates_duplicated_messages() {
    // every Algorithm II transition is idempotent (guarded inserts and
    // color checks), so duplicated deliveries must not change the MIS
    // or break validity
    let udg = UnitDiskGraph::build(deploy::uniform(70, 4.2, 4.2, 6), 1.0);
    if !traversal::is_connected(udg.graph()) {
        return;
    }
    let reference = algo2::distributed::run_synchronous(udg.graph());
    for seed in 0..5 {
        let schedule = Schedule::synchronous()
            .with_fault_plan(FaultPlan::new(seed).duplicate_probability(0.4));
        let run = algo2::distributed::run(udg.graph(), schedule);
        assert_eq!(
            run.result.wcds.mis_dominators(),
            reference.result.wcds.mis_dominators(),
            "seed {seed}: duplication changed the MIS"
        );
        assert!(run.result.wcds.is_valid(udg.graph()), "seed {seed}");
    }
}

#[test]
fn election_tolerates_duplicated_messages() {
    let g = generators::connected_gnp(25, 0.15, 3);
    for seed in 0..5 {
        let schedule = Schedule::synchronous()
            .with_fault_plan(FaultPlan::new(seed).duplicate_probability(0.5));
        let mut sim = Simulator::new(&g, ElectionNode::new);
        sim.run(schedule).expect("quiesces");
        for u in g.nodes() {
            assert_eq!(sim.node(u).leader(), Some(0), "seed {seed}, node {u}");
        }
    }
}

#[test]
fn protocols_are_confluent_under_adversarial_round_order() {
    // descending-id round processing must not change any outcome: the
    // MIS rule and the election are order-independent (confluent)
    let g = generators::connected_gnp(40, 0.1, 19);
    let normal = algo2::distributed::run(&g, Schedule::synchronous());
    let reversed = algo2::distributed::run(&g, Schedule::synchronous().with_descending_order());
    assert_eq!(
        normal.result.wcds.mis_dominators(),
        reversed.result.wcds.mis_dominators()
    );
    assert!(reversed.result.wcds.is_valid(&g));

    let out_n = elect(&g, Schedule::synchronous());
    let out_r = elect(&g, Schedule::synchronous().with_descending_order());
    assert_eq!(out_n.leader, out_r.leader);
    assert!(out_r.tree.spans(&g));
}

#[test]
fn algo2_independence_is_a_safety_invariant_not_just_a_postcondition() {
    // at NO point during the run may two adjacent nodes both be MIS
    // dominators — checked after every round / every event
    use wcds::core::algo2::distributed::{Algo2Node, NodeColor};

    let g = generators::connected_gnp(45, 0.1, 13);
    for schedule in [Schedule::synchronous(), Schedule::asynchronous(3)] {
        let mut sim = Simulator::new(&g, |_| Algo2Node::new());
        let g2 = g.clone();
        sim.run_inspected(schedule, move |time, nodes| {
            for u in g2.nodes() {
                if nodes[u].color() != NodeColor::MisDominator {
                    continue;
                }
                for v in g2.adj(u) {
                    if v > u && nodes[v].color() == NodeColor::MisDominator {
                        return Err(format!("adjacent dominators {u},{v} at time {time}"));
                    }
                }
            }
            Ok(())
        })
        .expect("independence must hold throughout the run");
    }
}

#[test]
fn election_never_has_two_leaders_at_any_instant() {
    let g = generators::connected_gnp(30, 0.12, 17);
    for seed in 0..6 {
        let mut sim = Simulator::new(&g, ElectionNode::new);
        sim.run_inspected(Schedule::asynchronous(seed), |time, nodes| {
            let leaders: Vec<u64> =
                nodes.iter().filter_map(|n| n.leader()).collect();
            if leaders.iter().any(|&l| l != 0) {
                return Err(format!("wrong leader believed at time {time}: {leaders:?}"));
            }
            Ok(())
        })
        .expect("agreement must hold throughout");
    }
}

#[test]
fn inspector_abort_is_reported() {
    use wcds::sim::SimError;
    let g = generators::path(4);
    let mut sim = Simulator::new(&g, ElectionNode::new);
    let err = sim
        .run_inspected(Schedule::synchronous(), |time, _| {
            if time >= 2 {
                Err("stop here".into())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
    assert!(matches!(err, SimError::InvariantViolated { time: 2, .. }), "{err:?}");
}

#[test]
fn marking_phase_is_exactly_one_message_per_node_at_scale() {
    let g = generators::connected_gnp(200, 0.025, 9);
    let run = algo1::distributed::run_synchronous(&g);
    assert_eq!(run.marking_report.messages.total(), 200);
    assert_eq!(run.marking_report.messages.max_per_node(), 1);
    assert_eq!(
        run.marking_report.messages.of_kind("BLACK") as usize,
        run.result.wcds.len()
    );
    assert_eq!(
        run.marking_report.messages.of_kind("GRAY") as usize,
        200 - run.result.wcds.len()
    );
}
