//! Property-based tests over random deployments and random graphs:
//! every invariant the paper proves, checked over seeded random cases.
//!
//! The build environment has no access to crates.io, so `proptest` is
//! unavailable; this harness trades shrinking for deterministic replay.
//! Each property runs [`CASES`] seeded cases — a failure message names
//! the case seed, and re-running that seed reproduces the input exactly.

use wcds::core::algo1::AlgorithmOne;
use wcds::core::algo2::AlgorithmTwo;
use wcds::core::mis::{greedy_mis, RankingMode};
use wcds::core::properties;
use wcds::core::spanner::SpannerStats;
use wcds::core::WcdsConstruction;
use wcds::geom::{deploy, GridIndex, Point};
use wcds::graph::{domination, generators, traversal, Graph, UnitDiskGraph};
use wcds_rng::{ChaCha12Rng, Rng};

/// Cases per property; each derives its input from its own seed.
const CASES: u64 = 48;

/// A random uniform deployment dense enough to usually connect.
fn deployment(case: u64) -> Vec<Point> {
    let mut r = ChaCha12Rng::seed_from_u64(case);
    let n = r.gen_range(20usize..120);
    let side = (n as f64 * std::f64::consts::PI / 14.0).sqrt();
    deploy::uniform(n, side, side, r.gen::<u64>() % 5000)
}

/// An arbitrary connected abstract graph.
fn connected_graph(case: u64) -> Graph {
    let mut r = ChaCha12Rng::seed_from_u64(case.wrapping_mul(0x9E37_79B9) ^ 0x00C0_FFEE);
    let n = r.gen_range(5usize..60);
    let p = r.gen_range(0u32..20) as f64 / 100.0;
    generators::connected_gnp(n, p, r.gen::<u64>() % 5000)
}

#[test]
fn udg_adjacency_is_symmetric_and_radius_consistent() {
    for case in 0..CASES {
        let pts = deployment(case);
        let udg = UnitDiskGraph::build(pts.clone(), 1.0);
        let g = udg.graph();
        for u in g.nodes() {
            for v in g.adj(u) {
                assert!(g.has_edge(v, u), "case {case}: asymmetric edge ({u}, {v})");
                assert!(pts[u].distance(pts[v]) <= 1.0 + 1e-12, "case {case}");
            }
        }
    }
}

#[test]
fn grid_index_agrees_with_brute_force() {
    for case in 0..CASES {
        let pts = deployment(case);
        let probe = case as usize % pts.len();
        let idx = GridIndex::build(&pts, 1.0);
        let mut got = idx.neighbors_within(&pts, pts[probe], 1.0);
        got.sort_unstable();
        let want: Vec<usize> =
            (0..pts.len()).filter(|&i| pts[i].within(pts[probe], 1.0)).collect();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn greedy_mis_is_always_maximal_independent() {
    for case in 0..CASES {
        let g = connected_graph(case);
        for mode in [RankingMode::StaticId, RankingMode::DegreeId] {
            let mis = greedy_mis(&g, mode);
            assert!(
                domination::is_maximal_independent_set(&g, &mis),
                "case {case}, mode {mode:?}"
            );
        }
    }
}

#[test]
fn lemma3_subset_distance_two_or_three() {
    for case in 0..CASES {
        let g = connected_graph(case);
        let mis = greedy_mis(&g, RankingMode::StaticId);
        if mis.len() < 2 {
            continue;
        }
        let d = properties::max_complementary_subset_distance(&g, &mis)
            .expect("connected graph");
        assert!((2..=3).contains(&d), "case {case}: distance {d} outside Lemma 3");
    }
}

#[test]
fn theorem4_level_ranked_mis_distance_exactly_two() {
    for case in 0..CASES {
        let g = connected_graph(case);
        let (_, mis) = AlgorithmOne::new().construct_detailed(&g);
        if mis.len() < 2 {
            continue;
        }
        let d = properties::max_complementary_subset_distance(&g, &mis)
            .expect("connected graph");
        assert_eq!(d, 2, "case {case}");
    }
}

#[test]
fn both_algorithms_always_produce_valid_wcds() {
    for case in 0..CASES {
        let g = connected_graph(case);
        let r1 = AlgorithmOne::new().construct(&g);
        assert!(r1.wcds.is_valid(&g), "case {case}: Algorithm I");
        let r2 = AlgorithmTwo::new().construct(&g);
        assert!(r2.wcds.is_valid(&g), "case {case}: Algorithm II");
        // Algorithm II's bridged set closes every gap to ≤ 2 hops
        if r2.wcds.len() >= 2 {
            let d = properties::max_complementary_subset_distance(&g, r2.wcds.nodes())
                .expect("connected graph");
            assert!(d <= 2, "case {case}: distance {d}");
        }
    }
}

#[test]
fn lemma1_and_lemma2_on_random_udgs() {
    for case in 0..CASES {
        let udg = UnitDiskGraph::build(deployment(case), 1.0);
        let g = udg.graph();
        let mis = greedy_mis(g, RankingMode::StaticId);
        assert!(properties::max_mis_neighbors(g, &mis) <= 5, "case {case}");
        let (m2, m3) = properties::lemma2_maxima(g, &mis);
        assert!(m2 <= 23, "case {case}: m2 = {m2}");
        assert!(m3 <= 47, "case {case}: m3 = {m3}");
    }
}

#[test]
fn spanner_bounds_on_random_udgs() {
    for case in 0..CASES {
        let udg = UnitDiskGraph::build(deployment(case), 1.0);
        let g = udg.graph();
        if !traversal::is_connected(g) {
            continue;
        }
        let r1 = AlgorithmOne::new().construct(g);
        assert!(
            SpannerStats::compute(g, &r1.wcds).satisfies_theorem8_bound(),
            "case {case}: Theorem 8"
        );
        let r2 = AlgorithmTwo::new().construct(g);
        assert!(
            SpannerStats::compute(g, &r2.wcds).satisfies_theorem10_bound(),
            "case {case}: Theorem 10"
        );
    }
}

#[test]
fn weakly_induced_subgraph_laws() {
    for case in 0..CASES {
        let g = connected_graph(case);
        let mask = ChaCha12Rng::seed_from_u64(case).gen::<u64>();
        // pick an arbitrary subset via the mask bits
        let s: Vec<usize> = g.nodes().filter(|&u| mask >> (u % 64) & 1 == 1).collect();
        let w = g.weakly_induced(&s);
        // 1. it is a subgraph
        assert!(g.contains_subgraph(&w), "case {case}");
        // 2. every kept edge touches the set
        let member = g.membership(&s);
        for e in w.edges() {
            let (a, b) = e.endpoints();
            assert!(member[a] || member[b], "case {case}: edge ({a}, {b})");
        }
        // 3. every dropped edge touches no member
        for e in g.edges() {
            let (a, b) = e.endpoints();
            if !w.has_edge(a, b) {
                assert!(!member[a] && !member[b], "case {case}: edge ({a}, {b})");
            }
        }
    }
}

#[test]
fn bfs_distances_satisfy_triangle_inequality_on_edges() {
    for case in 0..CASES {
        let g = connected_graph(case);
        let d = traversal::bfs_distances(&g, 0);
        for u in g.nodes() {
            for v in g.adj(u) {
                let du = d[u].expect("connected");
                let dv = d[v].expect("connected");
                assert!(du.abs_diff(dv) <= 1, "case {case}: BFS layers differ by >1");
            }
        }
    }
}

#[test]
fn spanning_tree_levels_match_bfs() {
    for case in 0..CASES {
        let g = connected_graph(case);
        let root = case as usize % g.node_count();
        let tree = wcds::graph::spanning::SpanningTree::bfs(&g, root).expect("connected");
        let d = traversal::bfs_distances(&g, root);
        for u in g.nodes() {
            assert_eq!(Some(tree.level(u)), d[u], "case {case}: node {u}");
        }
        assert!(tree.spans(&g), "case {case}");
    }
}

#[test]
fn graph_io_roundtrip() {
    for case in 0..CASES {
        let g = connected_graph(case);
        let doc = wcds::graph::io::from_text(&wcds::graph::io::to_text(&g, None))
            .expect("roundtrip");
        assert_eq!(doc.graph, g, "case {case}");
    }
}

#[test]
fn proximity_spanners_nest_and_preserve_connectivity() {
    for case in 0..CASES {
        use wcds::baselines::proximity::{gabriel_graph, relative_neighborhood_graph};
        let udg = UnitDiskGraph::build(deployment(case), 1.0);
        let rng = relative_neighborhood_graph(&udg);
        let gabriel = gabriel_graph(&udg);
        assert!(udg.graph().contains_subgraph(&gabriel), "case {case}");
        assert!(gabriel.contains_subgraph(&rng), "case {case}");
        // RNG preserves connectivity component-wise: same components
        assert_eq!(
            traversal::connected_components(udg.graph()),
            traversal::connected_components(&rng),
            "case {case}"
        );
    }
}

#[test]
fn distributed_maintenance_survives_one_random_move() {
    for case in 0..CASES {
        use wcds::core::maintenance::distributed::DynamicBackbone;
        let pts = deployment(case);
        let mut r = ChaCha12Rng::seed_from_u64(case ^ 0xDEAD);
        let victim = r.gen_range(0..pts.len());
        let (dx, dy) = (r.gen_range(-0.5f64..=0.5), r.gen_range(-0.5f64..=0.5));
        let mut net = DynamicBackbone::new(pts, 1.0);
        assert!(net.mis_is_valid(), "case {case}: initial MIS invalid");
        let old = net.points()[victim];
        let target = Point::new((old.x + dx).max(0.0), (old.y + dy).max(0.0));
        net.apply_motion(&[(victim, target)])
            .unwrap_or_else(|e| panic!("case {case}: repair did not quiesce: {e:?}"));
        assert!(net.mis_is_valid(), "case {case}: repair left an invalid MIS");
    }
}

#[test]
fn pruned_wcds_is_valid_and_minimal() {
    for case in 0..CASES {
        use wcds::core::postprocess::{is_minimal, prune, PruneOrder};
        let g = connected_graph(case);
        let raw = AlgorithmTwo::new().construct(&g).wcds;
        let pruned = prune(&g, &raw, PruneOrder::DescendingId);
        assert!(pruned.is_valid(&g), "case {case}");
        assert!(pruned.len() <= raw.len(), "case {case}");
        assert!(is_minimal(&g, &pruned), "case {case}");
    }
}

#[test]
fn articulation_points_match_removal_check() {
    for case in 0..CASES {
        use wcds::graph::connectivity;
        let g = connected_graph(case);
        let cuts = connectivity::articulation_points(&g);
        for u in g.nodes() {
            assert_eq!(
                cuts.contains(&u),
                !connectivity::survives_node_removal(&g, u),
                "case {case}: disagreement at node {u}"
            );
        }
    }
}

#[test]
fn csr_graph_matches_reference_adjacency_build() {
    // the CSR storage must be observationally identical to the obvious
    // Vec<Vec<NodeId>> adjacency structure it replaced
    for case in 0..CASES {
        let mut r = ChaCha12Rng::seed_from_u64(case ^ 0x5EED);
        let n = r.gen_range(1usize..80);
        let mut edges = Vec::new();
        let m = r.gen_range(0usize..(n * 3));
        for _ in 0..m {
            let a = r.gen_range(0..n);
            let b = r.gen_range(0..n);
            if a != b {
                edges.push((a, b));
            }
        }
        // reference build: dedup + sort per row
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            if !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for row in &mut adj {
            row.sort_unstable();
        }
        let g = Graph::from_edges(n, edges.iter().copied());
        assert_eq!(g.node_count(), n, "case {case}");
        let m_ref: usize = adj.iter().map(Vec::len).sum::<usize>() / 2;
        assert_eq!(g.edge_count(), m_ref, "case {case}");
        for (u, row) in adj.iter().enumerate() {
            assert!(g.adj(u).eq(row.iter().copied()), "case {case}, node {u}");
            assert_eq!(g.degree(u), row.len(), "case {case}, node {u}");
            for v in 0..n {
                let want = row.contains(&v);
                assert_eq!(g.has_edge(u, v), want, "case {case}, pair ({u}, {v})");
                assert_eq!(g.has_edge(v, u), want, "case {case}, pair ({v}, {u})");
            }
        }
        // the raw CSR rows must mirror the per-node views slot for slot
        let (offsets32, targets32) = g.csr32();
        assert_eq!(offsets32.len(), n + 1, "case {case}");
        for u in g.nodes() {
            let row = &targets32[offsets32[u] as usize..offsets32[u + 1] as usize];
            assert_eq!(row, g.neighbors(u), "case {case}, node {u}");
        }
    }
}

#[test]
fn dilation_report_identical_for_any_thread_count() {
    use wcds::core::dilation::DilationReport;
    for case in 0..CASES / 4 {
        let udg = UnitDiskGraph::build(deployment(case), 1.0);
        if !traversal::is_connected(udg.graph()) {
            continue;
        }
        let result = AlgorithmTwo::new().construct(udg.graph());
        let serial = DilationReport::measure_with_threads(
            udg.graph(),
            &result.spanner,
            udg.points(),
            1,
        );
        for nthreads in [2, 5, 16] {
            let par = DilationReport::measure_with_threads(
                udg.graph(),
                &result.spanner,
                udg.points(),
                nthreads,
            );
            assert_eq!(par, serial, "case {case}, nthreads {nthreads}");
        }
    }
}

#[test]
fn spanner_stats_edge_classes_account_for_everything() {
    for case in 0..CASES {
        let udg = UnitDiskGraph::build(deployment(case), 1.0);
        if !traversal::is_connected(udg.graph()) {
            continue;
        }
        let result = AlgorithmTwo::new().construct(udg.graph());
        let s = SpannerStats::compute(udg.graph(), &result.wcds);
        assert_eq!(
            s.gray_mis_edges
                + s.mis_additional_edges
                + s.gray_additional_edges
                + s.additional_additional_edges
                + s.mis_mis_edges,
            s.spanner_edges,
            "case {case}"
        );
        assert_eq!(s.mis_mis_edges, 0, "case {case}");
        assert_eq!(s.nodes - s.gray_nodes, result.wcds.len(), "case {case}");
    }
}
