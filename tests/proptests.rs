//! Property-based tests over random deployments and random graphs:
//! every invariant the paper proves, checked under proptest shrinking.

use proptest::prelude::*;
use wcds::core::algo1::AlgorithmOne;
use wcds::core::algo2::AlgorithmTwo;
use wcds::core::mis::{greedy_mis, RankingMode};
use wcds::core::properties;
use wcds::core::spanner::SpannerStats;
use wcds::core::WcdsConstruction;
use wcds::geom::{deploy, GridIndex, Point};
use wcds::graph::{domination, generators, traversal, Graph, UnitDiskGraph};

/// Strategy: a random uniform deployment dense enough to usually
/// connect.
fn deployment() -> impl Strategy<Value = Vec<Point>> {
    (20usize..120, 0u64..5000).prop_map(|(n, seed)| {
        let side = (n as f64 * std::f64::consts::PI / 14.0).sqrt();
        deploy::uniform(n, side, side, seed)
    })
}

/// Strategy: an arbitrary connected abstract graph.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (5usize..60, 0u64..5000, 0u32..20)
        .prop_map(|(n, seed, p)| generators::connected_gnp(n, p as f64 / 100.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn udg_adjacency_is_symmetric_and_radius_consistent(pts in deployment()) {
        let udg = UnitDiskGraph::build(pts.clone(), 1.0);
        let g = udg.graph();
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
                prop_assert!(pts[u].distance(pts[v]) <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn grid_index_agrees_with_brute_force(pts in deployment(), probe in 0usize..20) {
        prop_assume!(!pts.is_empty());
        let probe = probe % pts.len();
        let idx = GridIndex::build(&pts, 1.0);
        let mut got = idx.neighbors_within(&pts, pts[probe], 1.0);
        got.sort_unstable();
        let want: Vec<usize> =
            (0..pts.len()).filter(|&i| pts[i].within(pts[probe], 1.0)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn greedy_mis_is_always_maximal_independent(g in connected_graph()) {
        for mode in [RankingMode::StaticId, RankingMode::DegreeId] {
            let mis = greedy_mis(&g, mode);
            prop_assert!(domination::is_maximal_independent_set(&g, &mis));
        }
    }

    #[test]
    fn lemma3_subset_distance_two_or_three(g in connected_graph()) {
        let mis = greedy_mis(&g, RankingMode::StaticId);
        prop_assume!(mis.len() >= 2);
        let d = properties::max_complementary_subset_distance(&g, &mis)
            .expect("connected graph");
        prop_assert!((2..=3).contains(&d), "distance {} outside Lemma 3", d);
    }

    #[test]
    fn theorem4_level_ranked_mis_distance_exactly_two(g in connected_graph()) {
        let (_, mis) = AlgorithmOne::new().construct_detailed(&g);
        prop_assume!(mis.len() >= 2);
        let d = properties::max_complementary_subset_distance(&g, &mis)
            .expect("connected graph");
        prop_assert_eq!(d, 2);
    }

    #[test]
    fn both_algorithms_always_produce_valid_wcds(g in connected_graph()) {
        let r1 = AlgorithmOne::new().construct(&g);
        prop_assert!(r1.wcds.is_valid(&g));
        let r2 = AlgorithmTwo::new().construct(&g);
        prop_assert!(r2.wcds.is_valid(&g));
        // Algorithm II's bridged set closes every gap to ≤ 2 hops
        if r2.wcds.len() >= 2 {
            let d = properties::max_complementary_subset_distance(&g, r2.wcds.nodes())
                .expect("connected graph");
            prop_assert!(d <= 2);
        }
    }

    #[test]
    fn lemma1_and_lemma2_on_random_udgs(pts in deployment()) {
        let udg = UnitDiskGraph::build(pts, 1.0);
        let g = udg.graph();
        let mis = greedy_mis(g, RankingMode::StaticId);
        prop_assert!(properties::max_mis_neighbors(g, &mis) <= 5);
        let (m2, m3) = properties::lemma2_maxima(g, &mis);
        prop_assert!(m2 <= 23);
        prop_assert!(m3 <= 47);
    }

    #[test]
    fn spanner_bounds_on_random_udgs(pts in deployment()) {
        let udg = UnitDiskGraph::build(pts, 1.0);
        let g = udg.graph();
        prop_assume!(traversal::is_connected(g));
        let r1 = AlgorithmOne::new().construct(g);
        prop_assert!(SpannerStats::compute(g, &r1.wcds).satisfies_theorem8_bound());
        let r2 = AlgorithmTwo::new().construct(g);
        prop_assert!(SpannerStats::compute(g, &r2.wcds).satisfies_theorem10_bound());
    }

    #[test]
    fn weakly_induced_subgraph_laws(g in connected_graph(), mask in 0u64..u64::MAX) {
        // pick an arbitrary subset via the mask bits
        let s: Vec<usize> = g.nodes().filter(|&u| mask >> (u % 64) & 1 == 1).collect();
        let w = g.weakly_induced(&s);
        // 1. it is a subgraph
        prop_assert!(g.contains_subgraph(&w));
        // 2. every kept edge touches the set
        let member = g.membership(&s);
        for e in w.edges() {
            let (a, b) = e.endpoints();
            prop_assert!(member[a] || member[b]);
        }
        // 3. every dropped edge touches no member
        for e in g.edges() {
            let (a, b) = e.endpoints();
            if !w.has_edge(a, b) {
                prop_assert!(!member[a] && !member[b]);
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_on_edges(g in connected_graph()) {
        let d = traversal::bfs_distances(&g, 0);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let du = d[u].expect("connected");
                let dv = d[v].expect("connected");
                prop_assert!(du.abs_diff(dv) <= 1, "BFS layers differ by >1 across an edge");
            }
        }
    }

    #[test]
    fn spanning_tree_levels_match_bfs(g in connected_graph(), root in 0usize..60) {
        let root = root % g.node_count();
        let tree = wcds::graph::spanning::SpanningTree::bfs(&g, root).expect("connected");
        let d = traversal::bfs_distances(&g, root);
        for u in g.nodes() {
            prop_assert_eq!(Some(tree.level(u)), d[u]);
        }
        prop_assert!(tree.spans(&g));
    }

    #[test]
    fn graph_io_roundtrip(g in connected_graph()) {
        let doc = wcds::graph::io::from_text(&wcds::graph::io::to_text(&g, None))
            .expect("roundtrip");
        prop_assert_eq!(doc.graph, g);
    }

    #[test]
    fn proximity_spanners_nest_and_preserve_connectivity(pts in deployment()) {
        use wcds::baselines::proximity::{gabriel_graph, relative_neighborhood_graph};
        let udg = UnitDiskGraph::build(pts, 1.0);
        let rng = relative_neighborhood_graph(&udg);
        let gabriel = gabriel_graph(&udg);
        prop_assert!(udg.graph().contains_subgraph(&gabriel));
        prop_assert!(gabriel.contains_subgraph(&rng));
        // RNG preserves connectivity component-wise: same components
        prop_assert_eq!(
            traversal::connected_components(udg.graph()),
            traversal::connected_components(&rng)
        );
    }

    #[test]
    fn distributed_maintenance_survives_one_random_move(
        pts in deployment(),
        victim in 0usize..120,
        dx in -0.5f64..0.5,
        dy in -0.5f64..0.5,
    ) {
        use wcds::core::maintenance::distributed::DynamicBackbone;
        let victim = victim % pts.len();
        let mut net = DynamicBackbone::new(pts, 1.0);
        prop_assert!(net.mis_is_valid());
        let old = net.points()[victim];
        let target = Point::new((old.x + dx).max(0.0), (old.y + dy).max(0.0));
        net.apply_motion(&[(victim, target)]);
        prop_assert!(net.mis_is_valid(), "repair left an invalid MIS");
    }

    #[test]
    fn pruned_wcds_is_valid_and_minimal(g in connected_graph()) {
        use wcds::core::postprocess::{is_minimal, prune, PruneOrder};
        let raw = AlgorithmTwo::new().construct(&g).wcds;
        let pruned = prune(&g, &raw, PruneOrder::DescendingId);
        prop_assert!(pruned.is_valid(&g));
        prop_assert!(pruned.len() <= raw.len());
        prop_assert!(is_minimal(&g, &pruned));
    }

    #[test]
    fn articulation_points_match_removal_check(g in connected_graph()) {
        use wcds::graph::connectivity;
        let cuts = connectivity::articulation_points(&g);
        for u in g.nodes() {
            prop_assert_eq!(
                cuts.contains(&u),
                !connectivity::survives_node_removal(&g, u),
                "disagreement at node {}", u
            );
        }
    }

    #[test]
    fn spanner_stats_edge_classes_account_for_everything(pts in deployment()) {
        let udg = UnitDiskGraph::build(pts, 1.0);
        prop_assume!(traversal::is_connected(udg.graph()));
        let result = AlgorithmTwo::new().construct(udg.graph());
        let s = SpannerStats::compute(udg.graph(), &result.wcds);
        prop_assert_eq!(
            s.gray_mis_edges
                + s.mis_additional_edges
                + s.gray_additional_edges
                + s.additional_additional_edges
                + s.mis_mis_edges,
            s.spanner_edges
        );
        prop_assert_eq!(s.mis_mis_edges, 0);
        prop_assert_eq!(s.nodes - s.gray_nodes, result.wcds.len());
    }
}
