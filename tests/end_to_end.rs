//! Cross-crate integration tests: the full pipeline from deployment to
//! routed packets, exercised through the public facade API only.

use wcds::baselines::{exact, GreedyCds, GreedyWcds, MisTreeCds, WuLiCds};
use wcds::core::algo1::AlgorithmOne;
use wcds::core::algo2::AlgorithmTwo;
use wcds::core::dilation::DilationReport;
use wcds::core::spanner::SpannerStats;
use wcds::core::{algo1, algo2, WcdsConstruction};
use wcds::geom::deploy;
use wcds::graph::{domination, traversal, UnitDiskGraph};
use wcds::routing::{BackboneRouter, BroadcastPlan};

fn connected_udg(n: usize, side: f64, seed: u64) -> UnitDiskGraph {
    for attempt in 0..100 {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed + attempt), 1.0);
        if traversal::is_connected(udg.graph()) {
            return udg;
        }
    }
    panic!("no connected deployment for n = {n}");
}

#[test]
fn every_construction_yields_a_valid_wcds_on_the_same_instance() {
    let udg = connected_udg(150, 6.0, 1);
    let g = udg.graph();
    let algos: Vec<Box<dyn WcdsConstruction>> = vec![
        Box::new(AlgorithmOne::new()),
        Box::new(AlgorithmTwo::new()),
        Box::new(GreedyWcds::new()),
        Box::new(GreedyCds::new()),
        Box::new(WuLiCds::new()),
        Box::new(MisTreeCds::new()),
    ];
    for algo in &algos {
        let result = algo.construct(g);
        assert!(result.wcds.is_valid(g), "{} produced an invalid WCDS", algo.name());
        assert!(g.contains_subgraph(&result.spanner), "{}'s spanner is not a subgraph", algo.name());
    }
}

#[test]
fn distributed_and_centralized_algorithms_agree_end_to_end() {
    let udg = connected_udg(80, 4.5, 3);
    let g = udg.graph();

    let dist2 = algo2::distributed::run_synchronous(g);
    let cent2 = AlgorithmTwo::new().construct(g);
    assert_eq!(dist2.result.wcds.mis_dominators(), cent2.wcds.mis_dominators());

    let dist1 = algo1::distributed::run_synchronous(g);
    let cent1 = AlgorithmOne::with_root(dist1.leader).construct(g);
    assert_eq!(dist1.result.wcds.nodes(), cent1.wcds.nodes());
}

#[test]
fn full_pipeline_deploy_construct_route_broadcast() {
    let udg = connected_udg(200, 7.0, 5);
    let g = udg.graph();
    let result = AlgorithmTwo::new().construct(g);
    assert!(result.wcds.is_valid(g));

    // sparseness + dilation guarantees
    let stats = SpannerStats::compute(g, &result.wcds);
    assert!(stats.satisfies_theorem10_bound());
    let dil = DilationReport::measure(g, &result.spanner, udg.points());
    assert!(dil.satisfies_topological_bound());
    assert!(dil.satisfies_geometric_bound());

    // routing works for sampled pairs and stays on the spanner
    let router = BackboneRouter::build(g, &result.wcds);
    for (s, t) in [(0, 199), (17, 133), (44, 90)] {
        let path = router.route(s, t).expect("connected");
        assert_eq!(*path.first().unwrap(), s);
        assert_eq!(*path.last().unwrap(), t);
        assert!(router.route_uses_spanner(&path));
    }

    // backbone broadcast covers everyone cheaper than flooding
    let plan = BroadcastPlan::for_wcds(g, &result.wcds);
    let out = plan.simulate(g, 0);
    assert!(out.full_coverage);
    assert!(out.transmissions < 200);
}

#[test]
fn exact_optimum_sandwiches_all_algorithms_on_small_instances() {
    for seed in 0..5 {
        let udg = connected_udg(13, 2.4, 100 + seed);
        let g = udg.graph();
        let opt = exact::minimum_wcds(g).len();
        let lb = exact::wcds_lower_bound_udg(g);
        assert!(lb <= opt);
        for algo in [
            &AlgorithmOne::new() as &dyn WcdsConstruction,
            &AlgorithmTwo::new(),
            &GreedyWcds::new(),
        ] {
            let size = algo.construct(g).wcds.len();
            assert!(size >= opt, "{} beat the optimum?!", algo.name());
            assert!(size <= 123 * opt, "{} exceeded every proven bound", algo.name());
        }
        // Lemma 7 specifically for Algorithm I
        let a1 = AlgorithmOne::new().construct(g).wcds.len();
        assert!(a1 <= 5 * opt, "Lemma 7 violated: {a1} > 5·{opt}");
    }
}

#[test]
fn paper_figure2_reproduced_through_the_facade() {
    let udg = UnitDiskGraph::build(deploy::figure2(), 1.0);
    let g = udg.graph();
    let wcds = wcds::core::Wcds::from_mis(vec![0, 1]);
    assert!(domination::is_dominating_set(g, wcds.nodes()));
    assert!(wcds.is_valid(g));
    assert!(!domination::is_connected_dominating_set(g, wcds.nodes()));
}

#[test]
fn graph_io_roundtrips_an_experiment_topology() {
    let udg = connected_udg(60, 4.0, 9);
    let text = wcds::graph::io::to_text(udg.graph(), Some(udg.points()));
    let doc = wcds::graph::io::from_text(&text).expect("roundtrip parses");
    assert_eq!(&doc.graph, udg.graph());
    // a WCDS of the original validates on the parsed copy
    let result = AlgorithmTwo::new().construct(udg.graph());
    assert!(result.wcds.is_valid(&doc.graph));
}

#[test]
fn asynchronous_schedules_preserve_all_guarantees() {
    let udg = connected_udg(70, 4.2, 11);
    let g = udg.graph();
    for seed in 0..6 {
        let run = algo2::distributed::run_asynchronous(g, seed);
        assert!(run.result.wcds.is_valid(g), "seed {seed}");
        let stats = SpannerStats::compute(g, &run.result.wcds);
        assert!(stats.satisfies_theorem10_bound(), "seed {seed}");
        let dil = DilationReport::measure(g, &run.result.spanner, udg.points());
        assert!(dil.satisfies_topological_bound(), "seed {seed}");
    }
}
