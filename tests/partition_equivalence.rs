//! Grid-partitioned Algorithm II ⟷ sequential equivalence.
//!
//! [`PartitionedTwo`] promises *byte-identical* output to
//! [`AlgorithmTwo`] for every thread count — the property the whole
//! city-scale pipeline rests on. This suite checks it directly (the
//! construction also self-checks at n ≤ 5000; here the comparison is
//! explicit so the property is exercised at several widths and on
//! adversarial inputs, with and without `--features rayon`).

use wcds_core::algo2::AlgorithmTwo;
use wcds_core::partition::PartitionedTwo;
use wcds_geom::{deploy, Point};
use wcds_graph::UnitDiskGraph;

/// Thread widths exercised per instance: serial, an odd width that
/// splits cells unevenly, and more workers than cells for small inputs.
const WIDTHS: [usize; 3] = [1, 3, 8];

fn assert_equivalent(udg: &UnitDiskGraph, tag: &str) {
    let seq = AlgorithmTwo::new().construct_parts(udg.graph());
    for nthreads in WIDTHS {
        let got = PartitionedTwo::with_threads(nthreads).construct_parts(udg);
        assert_eq!(got, seq, "{tag}: diverged at {nthreads} threads");
    }
}

fn side_for_avg_degree(n: usize, avg_degree: f64) -> f64 {
    (n as f64 * std::f64::consts::PI / avg_degree).sqrt()
}

#[test]
fn uniform_deployments_match_sequential_small() {
    for n in [200usize, 1000] {
        let side = side_for_avg_degree(n, 11.0);
        for seed in 0..20u64 {
            let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), 1.0);
            assert_equivalent(&udg, &format!("uniform n={n} seed={seed}"));
        }
    }
}

#[test]
fn uniform_deployments_match_sequential_n5000() {
    // large enough that the layout spans several super-cells per axis
    let side = side_for_avg_degree(5000, 11.0);
    for seed in 0..20u64 {
        let udg = UnitDiskGraph::build(deploy::uniform(5000, side, side, seed), 1.0);
        assert_equivalent(&udg, &format!("uniform n=5000 seed={seed}"));
    }
}

#[test]
fn clustered_and_skewed_deployments_match_sequential() {
    for seed in 0..20u64 {
        let pts = deploy::clustered(800, 12.0, 12.0, 10, 0.8, seed);
        assert_equivalent(
            &UnitDiskGraph::build(pts, 1.0),
            &format!("clustered seed={seed}"),
        );
        // extreme aspect ratio: the cell grid collapses to one row
        let pts = deploy::uniform(600, 80.0, 0.5, seed);
        assert_equivalent(
            &UnitDiskGraph::build(pts, 1.0),
            &format!("ribbon seed={seed}"),
        );
    }
}

#[test]
fn lattice_points_on_cell_boundaries_match_sequential() {
    // Exact lattices whose coordinates land on (or tie with) super-cell
    // boundaries, plus coincident duplicates: ownership must come from
    // the layout rule alone, never from floating-point tie luck.
    for (nx, ny, pitch) in [(40usize, 40usize, 0.75), (70, 15, 0.5), (34, 34, 0.9999999)] {
        let mut pts = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                pts.push(Point::new(i as f64 * pitch, j as f64 * pitch));
            }
        }
        for k in 0..60 {
            // duplicates of lattice sites, including the extreme corner
            let i = (7 * k) % nx;
            let j = (11 * k) % ny;
            pts.push(Point::new(i as f64 * pitch, j as f64 * pitch));
        }
        let udg = UnitDiskGraph::build(pts, 1.0);
        assert_equivalent(&udg, &format!("lattice {nx}x{ny} pitch={pitch}"));
    }
}

#[test]
fn degenerate_extents_match_sequential() {
    // collinear and coincident point sets collapse the cell grid
    let line: Vec<Point> = (0..500).map(|i| Point::new(i as f64 * 0.6, 2.5)).collect();
    assert_equivalent(&UnitDiskGraph::build(line, 1.0), "collinear");
    let heap: Vec<Point> = (0..300).map(|_| Point::new(1.0, 1.0)).collect();
    assert_equivalent(&UnitDiskGraph::build(heap, 1.0), "coincident");
}
